"""``python -m repro.analysis`` — same interface as ``repro check``."""

from __future__ import annotations

import sys

from repro.cli import run_check

if __name__ == "__main__":
    sys.exit(run_check(sys.argv[1:]))
