"""COS3xx: plan checks for query groups and their representatives.

A query group is sound when (Definition 1 / Theorems 1-2 of the paper)
every member is *contained* by the representative, and when the member
can actually be recovered from the representative's result stream: the
re-tightening profile's residual constraints must be evaluable over the
representative's output attributes, and the member's own output schema
must be reproducible by projection alone.

These checks re-derive the recoverability conditions independently and
then cross-check against the production composition in
:func:`repro.core.profiles.result_profile` — if the production code
rejects a member the static derivation accepted (or the derived profile
disagrees with the produced one), that is reported too, on the member's
group.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.analysis.diagnostics import Report
from repro.cql.ast import ContinuousQuery, QueryError
from repro.cql.predicates import Atom, Conjunction, atom_terms
from repro.cql.schema import Catalog
from repro.core.containment import contains
from repro.core.grouping import QueryGroup
from repro.core.merging import residual_atoms, window_residuals
from repro.core.profiles import ProfileCompositionError, result_profile


def _member_label(member: ContinuousQuery) -> str:
    return member.name if member.name else "<member>"


def check_group(group: QueryGroup, catalog: Catalog) -> Report:
    """COS301/302/303 for one query group."""
    report = Report()
    source = f"group:{group.group_id}"
    rep = group.representative
    try:
        rep_canonical = rep.canonical(catalog)
        rep_outputs: Set[str] = set(rep_canonical.output_attribute_names(catalog))
    except QueryError as exc:
        report.add(
            "COS301",
            f"representative {rep.name!r} cannot be canonicalised: {exc}",
            source,
        )
        return report
    for member in group.members:
        label = _member_label(member)
        try:
            member_canonical = member.canonical(catalog)
        except QueryError as exc:
            report.add(
                "COS301",
                f"member {label!r} cannot be canonicalised: {exc}",
                source,
            )
            continue
        if not contains(member_canonical, rep_canonical, catalog):
            report.add(
                "COS301",
                f"representative {rep.name!r} does not contain member "
                f"{label!r}: some member results would be missing from "
                "the representative's result stream",
                source,
            )
        # Recoverability, derived independently of result_profile():
        residuals: List[Atom] = list(
            residual_atoms(member_canonical, rep_canonical.predicate)
        )
        residuals.extend(window_residuals(member_canonical, rep_canonical))
        needed: Set[str] = set()
        for atom in residuals:
            needed |= atom_terms(atom)
        missing = sorted(needed - rep_outputs)
        if missing:
            report.add(
                "COS303",
                f"member {label!r} needs residual attributes {missing} "
                "that the representative's result stream does not carry; "
                "the re-tightening filter cannot be evaluated",
                source,
            )
        member_outputs = member_canonical.output_attribute_names(catalog)
        not_provided = sorted(set(member_outputs) - rep_outputs)
        if not_provided:
            report.add(
                "COS302",
                f"member {label!r} outputs {not_provided} that the "
                "representative's result stream does not carry; "
                "re-tightening cannot reproduce the member's result "
                "schema",
                source,
            )
        if missing or not_provided:
            continue
        # Cross-check: the production composition must agree that this
        # member is recoverable, and its profile must project exactly
        # the member's output schema.
        try:
            profile = result_profile(
                member_canonical,
                rep_canonical,
                catalog,
                result_stream=f"result:{group.group_id}",
            )
        except ProfileCompositionError as exc:
            report.add(
                "COS302",
                f"member {label!r}: result_profile() rejects a member the "
                f"static derivation accepted ({exc}); the two "
                "implementations disagree",
                source,
            )
            continue
        projected = profile.projection_for(f"result:{group.group_id}")
        if projected != frozenset(member_outputs):
            report.add(
                "COS302",
                f"member {label!r}: re-tightening profile projects "
                f"{sorted(projected)} but the member's result schema is "
                f"{sorted(set(member_outputs))}",
                source,
            )
        filter_terms: Set[str] = set()
        for flt in profile.filters:
            filter_terms |= flt.condition.referenced_terms()
        unreadable = sorted(filter_terms - rep_outputs)
        if unreadable:
            report.add(
                "COS303",
                f"member {label!r}: re-tightening filter reads {unreadable} "
                "which the representative's result stream does not carry",
                source,
            )
    return report


def check_groups(groups: Sequence[QueryGroup], catalog: Catalog) -> Report:
    """COS3xx over every group of a grouping plan."""
    report = Report()
    for group in groups:
        report.extend(check_group(group, catalog))
    return report
