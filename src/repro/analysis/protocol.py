"""COS6xx — protocol-contract checks over the package's own source.

PR 4's reliability layer is a set of value-level state machines
(:class:`QueryStatus` lifecycle, sequenced-uplink gap repair, leased
failure detection).  The chaos harness exercises them dynamically; this
pass pins three *structural* contracts statically, so a refactor that
silently weakens one fails ``repro check --self`` before any seed ever
hits it:

* **COS601 exhaustive dispatch** — an ``if``/``elif`` chain (or
  ``match``) that dispatches on enum members must either test every
  member or end in an ``else``/wildcard.  Otherwise adding a member
  (say ``QueryStatus.REBUILDING``) makes existing handlers fall
  through *silently*.  Enum classes are extracted from the analyzed
  module set itself, so the check tracks the code, not a hardcoded
  member list.  Chains containing a negative test (``is not``/``!=``)
  or a single guard are not dispatches and are left alone.
* **COS602 exception-safe ordering** — inside the event-simulator
  callback modules (``sim/network.py``, ``system/events.py``), shared
  ``self`` state must not be mutated *before* a statement that can
  raise: when the later statement throws, the earlier mutation is left
  half-applied in live protocol state.  "Can raise" is resolved
  conservatively: explicit ``raise`` statements and calls to functions
  *in the same module* (``self._method`` / local functions) whose body
  contains an uncaught ``raise``.
* **COS603 capped backoff** — any scheduling call
  (``schedule``/``schedule_in``) whose callback references a
  NACK-named function must sit in a function that computes a capped
  delay (a ``min(...)`` over a ``*cap*`` parameter).  Retransmission
  pressure under loss must stay bounded; a raw, un-capped NACK timer
  is exactly the regression this forbids.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.source import SourceModule

#: Modules whose functions are event-simulator callbacks (COS602).
DEFAULT_CALLBACK_MODULES = ("sim/network.py", "system/events.py")

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "update",
    "extend",
    "insert",
    "pop",
    "popitem",
    "remove",
    "discard",
    "clear",
    "setdefault",
    "record",
}

_SCHEDULE_NAMES = {"schedule", "schedule_in"}


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# enum extraction
# ---------------------------------------------------------------------------


def collect_enums(modules: Iterable[SourceModule]) -> Dict[str, List[str]]:
    """Enum classes (name -> member names) across the module set.

    A class is an enum when any base is named ``Enum``/``IntEnum``/
    ``Flag``/``IntFlag`` (bare or attribute form); members are its
    class-level ``NAME = value`` assignments with uppercase names.
    """
    enums: Dict[str, List[str]] = {}
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_enum = False
            for base in node.bases:
                name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else ""
                )
                if name in ("Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"):
                    is_enum = True
            if not is_enum:
                continue
            members = []
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id.isupper()
                ):
                    members.append(stmt.targets[0].id)
            if members:
                enums[node.name] = members
    return enums


# ---------------------------------------------------------------------------
# COS601 — exhaustive enum dispatch
# ---------------------------------------------------------------------------


def _enum_tests(
    test: ast.AST, enums: Dict[str, List[str]]
) -> Optional[Tuple[str, str, Set[str], bool]]:
    """Decode one branch test against the known enums.

    Returns ``(subject, enum, members, negative)`` when the test
    compares a single subject against members of one enum; ``None``
    for anything else (those branches make a chain unclassifiable and
    it is skipped rather than guessed at).
    """

    def member_of(node: ast.AST) -> Optional[Tuple[str, str]]:
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id in enums and node.attr in enums[node.value.id]:
                return node.value.id, node.attr
        return None

    def _membership_elements(node: ast.AST) -> Optional[List[ast.AST]]:
        """Literal elements of a membership RHS, or ``None``.

        Accepts bare literals (``in (A, B)``) and single-argument
        constructor wrappers over them (``in frozenset((A, B))``),
        which read identically at runtime but used to defeat guard
        narrowing.
        """
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return list(node.elts)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "set", "tuple", "list")
            and not node.keywords
            and len(node.args) == 1
            and isinstance(node.args[0], (ast.Tuple, ast.List, ast.Set))
        ):
            return list(node.args[0].elts)
        return None

    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        subject = enum = None
        members: Set[str] = set()
        for value in test.values:
            decoded = _enum_tests(value, enums)
            if decoded is None or decoded[3]:
                return None
            sub, en, mem, _neg = decoded
            if subject is None:
                subject, enum = sub, en
            elif (sub, en) != (subject, enum):
                return None
            members |= mem
        if subject is None or enum is None:
            return None
        return subject, enum, members, False
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    left, right = test.left, test.comparators[0]
    if isinstance(op, (ast.Is, ast.Eq, ast.IsNot, ast.NotEq)):
        negative = isinstance(op, (ast.IsNot, ast.NotEq))
        for subject_node, member_node in ((left, right), (right, left)):
            decoded = member_of(member_node)
            if decoded is not None:
                subject = _dotted(subject_node)
                if subject is None:
                    return None
                return subject, decoded[0], {decoded[1]}, negative
        return None
    elements = _membership_elements(right)
    if isinstance(op, (ast.In, ast.NotIn)) and elements is not None:
        members = set()
        enum = None
        for element in elements:
            decoded = member_of(element)
            if decoded is None:
                return None
            if enum is None:
                enum = decoded[0]
            elif enum != decoded[0]:
                return None
            members.add(decoded[1])
        subject = _dotted(left)
        if subject is None or enum is None:
            return None
        return subject, enum, members, isinstance(op, ast.NotIn)
    return None


def _chain_branches(
    head: ast.If,
) -> Tuple[List[ast.If], bool]:
    """(branch If nodes of the chain, has a final plain else)."""
    branches = [head]
    node = head
    while len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
        node = node.orelse[0]
        branches.append(node)
    return branches, bool(node.orelse)


def _check_if_dispatch(
    module: SourceModule,
    tree: ast.AST,
    enums: Dict[str, List[str]],
    report: Report,
) -> None:
    elif_nodes: Set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and len(node.orelse) == 1 and isinstance(
            node.orelse[0], ast.If
        ):
            elif_nodes.add(id(node.orelse[0]))
    for node in ast.walk(tree):
        if not isinstance(node, ast.If) or id(node) in elif_nodes:
            continue
        branches, has_else = _chain_branches(node)
        decoded = [_enum_tests(branch.test, enums) for branch in branches]
        tested = [d for d in decoded if d is not None]
        if len(tested) < 2:
            continue  # a guard, not a dispatch
        if any(d is None for d in decoded):
            continue  # mixed chain: not a pure enum dispatch
        subjects = {(d[0], d[1]) for d in tested}
        if len(subjects) != 1:
            continue
        if any(d[3] for d in tested):
            continue  # a negative test covers the complement
        if has_else:
            continue
        ((_subject, enum),) = subjects
        covered: Set[str] = set()
        for d in tested:
            covered |= d[2]
        missing = [m for m in enums[enum] if m not in covered]
        if missing:
            report.add(
                "COS601",
                f"dispatch on {enum} never handles "
                f"{', '.join(missing)}; add the branch or an else",
                module.rel,
                node.lineno,
            )


def _check_match_dispatch(
    module: SourceModule,
    tree: ast.AST,
    enums: Dict[str, List[str]],
    report: Report,
) -> None:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Match):
            continue
        covered: Set[str] = set()
        enum: Optional[str] = None
        exhaustive = False
        plain = True
        for case in node.cases:
            pattern = case.pattern
            if isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                exhaustive = True  # wildcard / capture-all
            elif isinstance(pattern, ast.MatchValue):
                value = pattern.value
                if (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id in enums
                    and value.attr in enums[value.value.id]
                ):
                    if enum is None:
                        enum = value.value.id
                    elif enum != value.value.id:
                        plain = False
                    covered.add(value.attr)
                else:
                    plain = False
            else:
                plain = False
        if not plain or exhaustive or enum is None or len(covered) < 2:
            continue
        missing = [m for m in enums[enum] if m not in covered]
        if missing:
            report.add(
                "COS601",
                f"match on {enum} never handles "
                f"{', '.join(missing)}; add the case or a wildcard",
                module.rel,
                node.lineno,
            )


# ---------------------------------------------------------------------------
# COS602 — mutation before a fallible statement
# ---------------------------------------------------------------------------


def _uncaught_raises(func: ast.AST) -> bool:
    """Whether ``func`` contains a ``raise`` outside any try/except."""
    protected: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.handlers:
            for child in node.body:
                for sub in ast.walk(child):
                    protected.add(id(sub))
    for node in ast.walk(func):
        if isinstance(node, ast.Raise) and id(node) not in protected:
            return True
    return False


def _local_raisers(module: SourceModule) -> Set[str]:
    """Function/method names in this module that raise uncaught."""
    raisers: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _uncaught_raises(node):
                raisers.add(node.name)
    return raisers


def _is_self_mutation(stmt: ast.stmt) -> bool:
    def self_chain(node: ast.AST) -> bool:
        dotted = _dotted(node)
        return dotted is not None and dotted.startswith("self.")

    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if isinstance(target, ast.Subscript):
                target = target.value
            if self_chain(target):
                return True
        return False
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        func = stmt.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATORS
            and self_chain(func.value)
        ):
            return True
    return False


def _calls_executed_now(stmt: ast.stmt):
    """Call nodes in ``stmt`` excluding those inside lambdas (deferred
    callbacks do not unwind this statement when they raise)."""
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _fallible_call(stmt: ast.stmt, raisers: Set[str]) -> Optional[int]:
    """Line of the first call in ``stmt`` resolving to a local raiser."""
    for node in _calls_executed_now(stmt):
        func = node.func
        if isinstance(func, ast.Name) and func.id in raisers:
            return node.lineno
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in raisers
        ):
            return node.lineno
    return None


def _check_callback_function(
    module: SourceModule,
    func: ast.AST,
    raisers: Set[str],
    report: Report,
) -> None:
    flagged = False

    def visit(
        body: Sequence[ast.stmt], mutated: bool, shielded: bool
    ) -> Tuple[bool, bool]:
        """Scan one statement list; returns (mutated-on-fallthrough,
        terminated).  A branch ending in return/raise/break/continue
        does not leak its mutations past the enclosing statement."""
        nonlocal flagged
        for stmt in body:
            if flagged:
                return mutated, False
            if isinstance(stmt, ast.Raise):
                if mutated and not shielded:
                    report.add(
                        "COS602",
                        "raise after mutating shared self state leaves "
                        "the protocol state half-applied; validate "
                        "first, mutate last",
                        module.rel,
                        stmt.lineno,
                    )
                    flagged = True
                return mutated, True
            # Try statements are scanned branch-by-branch below: their
            # body is shielded by the handlers, so a whole-statement
            # scan would flag protected calls.
            if mutated and not shielded and not isinstance(stmt, ast.Try):
                line = _fallible_call(stmt, raisers)
                if line is not None:
                    report.add(
                        "COS602",
                        "call that can raise runs after shared self "
                        "state was mutated; reorder so validation "
                        "precedes mutation",
                        module.rel,
                        line,
                    )
                    flagged = True
                    return mutated, False
            if isinstance(stmt, (ast.Return, ast.Break, ast.Continue)):
                return mutated, True
            if _is_self_mutation(stmt):
                mutated = True
            if isinstance(stmt, ast.Try):
                caught = shielded or bool(stmt.handlers)
                mutated, _term = visit(stmt.body, mutated, caught)
                for handler in stmt.handlers:
                    mutated, _term = visit(handler.body, mutated, shielded)
                mutated, _term = visit(stmt.orelse, mutated, shielded)
                mutated, _term = visit(stmt.finalbody, mutated, shielded)
            elif isinstance(stmt, ast.If):
                after, term = visit(stmt.body, mutated, shielded)
                after_else, term_else = visit(stmt.orelse, mutated, shielded)
                # Only fall-through branches contribute their mutations.
                mutated = (
                    (after if not term else mutated)
                    or (after_else if not term_else else mutated)
                )
                if term and term_else and stmt.orelse:
                    return mutated, True
            elif isinstance(stmt, (ast.For, ast.While)):
                body_mut, _term = visit(stmt.body, mutated, shielded)
                else_mut, _term = visit(stmt.orelse, mutated, shielded)
                mutated = body_mut or else_mut
            elif isinstance(stmt, ast.With):
                mutated, _term = visit(stmt.body, mutated, shielded)
        return mutated, False

    visit(func.body, False, False)


def _check_exception_safety(
    module: SourceModule,
    callback_modules: Sequence[str],
    report: Report,
) -> None:
    if not any(module.rel.endswith(name) for name in callback_modules):
        return
    raisers = _local_raisers(module)
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_callback_function(module, node, raisers, report)


# ---------------------------------------------------------------------------
# COS603 — NACKs must ride the capped-backoff path
# ---------------------------------------------------------------------------


def _references_nack(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None and "nack" in name.lower():
            return True
    return False


def _has_capped_delay(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "min"
        ):
            for arg in node.args:
                for sub in ast.walk(arg):
                    name = None
                    if isinstance(sub, ast.Name):
                        name = sub.id
                    elif isinstance(sub, ast.Attribute):
                        name = sub.attr
                    if name is not None and "cap" in name.lower():
                        return True
    return False


def _check_nack_backoff(module: SourceModule, report: Report) -> None:
    for func in ast.walk(module.tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        capped = _has_capped_delay(func)
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULE_NAMES
            ):
                continue
            # Only the *callback* arguments count: the delay expression
            # legitimately names nack_cap/nack_delay in the capped path.
            callbacks = list(node.args[1:]) + [
                kw.value for kw in node.keywords
            ]
            if any(_references_nack(arg) for arg in callbacks) and not capped:
                report.add(
                    "COS603",
                    "NACK timer scheduled without a capped backoff "
                    "(no min(..., *cap*) in this function); route it "
                    "through the capped-backoff scheduler",
                    module.rel,
                    node.lineno,
                )


def check_protocol(
    module: SourceModule,
    enums: Optional[Dict[str, List[str]]] = None,
    callback_modules: Sequence[str] = DEFAULT_CALLBACK_MODULES,
) -> Report:
    """Run every COS6xx check over one module.

    ``enums`` is the package-wide enum table from
    :func:`collect_enums`; when omitted it is rebuilt from this module
    alone (single-file checks, canaries).
    """
    if enums is None:
        enums = collect_enums([module])
    report = Report()
    _check_if_dispatch(module, module.tree, enums, report)
    _check_match_dispatch(module, module.tree, enums, report)
    _check_exception_safety(module, callback_modules, report)
    _check_nack_backoff(module, report)
    return report
