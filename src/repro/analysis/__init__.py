"""Static analysis for COSMOS workloads (``repro check``).

Four check families, each with stable diagnostic codes:

* ``COS1xx`` — schema: unknown streams/attributes, type clashes,
  unused projections (:mod:`repro.analysis.schema`).
* ``COS2xx`` — satisfiability: unsatisfiable or vacuous predicates,
  filters outside declared attribute domains, disagreements between
  the independent interval solver and the production covering code
  (:mod:`repro.analysis.satisfiability`, :mod:`repro.analysis.intervals`).
* ``COS3xx`` — plans: representative containment and re-tightening
  recoverability for query groups (:mod:`repro.analysis.plans`).
* ``COS4xx`` — overlay/routing: non-tree overlays, unreachable
  subscribers, orphan routing entries (:mod:`repro.analysis.overlay`).

The checker is pure: it never publishes data or runs the SPE.
"""

from __future__ import annotations

from repro.analysis.checker import (
    BUILTIN_WORKLOADS,
    Workload,
    analyze_builtin,
    analyze_query,
    analyze_workload,
    build_network,
    builtin_workload,
)
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticError,
    Report,
    Severity,
)
from repro.analysis.intervals import ConstraintSystem, implies, is_unsatisfiable, solve
from repro.analysis.overlay import (
    check_network,
    check_overlay_graph,
    check_reachability,
    check_routing_entries,
)
from repro.analysis.plans import check_group, check_groups
from repro.analysis.satisfiability import (
    check_dead_profiles,
    check_filter,
    check_predicate,
    check_profile_filters,
)
from repro.analysis.schema import check_profile, check_query

__all__ = [
    "BUILTIN_WORKLOADS",
    "CODES",
    "ConstraintSystem",
    "Diagnostic",
    "DiagnosticError",
    "Report",
    "Severity",
    "Workload",
    "analyze_builtin",
    "analyze_query",
    "analyze_workload",
    "build_network",
    "builtin_workload",
    "check_dead_profiles",
    "check_filter",
    "check_group",
    "check_groups",
    "check_network",
    "check_overlay_graph",
    "check_predicate",
    "check_profile",
    "check_profile_filters",
    "check_query",
    "check_reachability",
    "check_routing_entries",
    "implies",
    "is_unsatisfiable",
    "solve",
]
