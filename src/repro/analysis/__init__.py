"""Static analysis for COSMOS workloads (``repro check``).

Four check families, each with stable diagnostic codes:

* ``COS1xx`` — schema: unknown streams/attributes, type clashes,
  unused projections (:mod:`repro.analysis.schema`).
* ``COS2xx`` — satisfiability: unsatisfiable or vacuous predicates,
  filters outside declared attribute domains, disagreements between
  the independent interval solver and the production covering code
  (:mod:`repro.analysis.satisfiability`, :mod:`repro.analysis.intervals`).
* ``COS3xx`` — plans: representative containment and re-tightening
  recoverability for query groups (:mod:`repro.analysis.plans`).
* ``COS4xx`` — overlay/routing: non-tree overlays, unreachable
  subscribers, orphan routing entries (:mod:`repro.analysis.overlay`).

Three further families lint the package's *own source* instead of a
workload (``repro check --self``):

* ``COS5xx`` — determinism hazards: entropy, wall clocks, unordered
  set iteration into ordered sinks, ``id()`` identity
  (:mod:`repro.analysis.purity`).
* ``COS6xx`` — protocol contracts: exhaustive enum-status dispatch,
  exception-safe mutation ordering in event callbacks, capped NACK
  backoff (:mod:`repro.analysis.protocol`).
* ``COS7xx`` — style rules migrated from ``tools/lint_repro.py``
  (:mod:`repro.analysis.style`), keeping one lint implementation.
* ``COS8xx`` — protocol models extracted package-wide: the message
  flow graph (:mod:`repro.analysis.flowgraph`: produced-but-unconsumed
  kinds, handlers without producers, sequencing-bypass sends) and the
  lifecycle state machines (:mod:`repro.analysis.lifecycle`:
  unreachable/unproduced/stuck states).  The extracted machines double
  as a dynamic oracle: :mod:`repro.analysis.conformance` replays chaos
  traces against them (``repro chaos --conform``), and ``repro flow``
  dumps the model as JSON/DOT.
* ``COS9xx`` — bounded model checking: the extracted machines composed
  with an explicit environment automaton into a product automaton and
  exhaustively explored (:mod:`repro.analysis.model`: tuple loss after
  the close barrier, deadlock, livelock, cross-machine invariants),
  plus chaos-corpus coverage of the model's reachable transitions
  (:mod:`repro.analysis.modelcov`, ``repro model --coverage``).

The driver (:mod:`repro.analysis.selfcheck`) unifies them behind
pragmas (``# cos: disable=...``), a checked-in baseline, and the
``--code``/``--json`` CLI surface.

The checker is pure: it never publishes data or runs the SPE.
"""

from __future__ import annotations

from repro.analysis.checker import (
    BUILTIN_WORKLOADS,
    Workload,
    analyze_builtin,
    analyze_query,
    analyze_workload,
    build_network,
    builtin_workload,
)
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticError,
    Report,
    Severity,
)
from repro.analysis.conformance import conformance_violations, transition_key
from repro.analysis.flowgraph import (
    FlowGraph,
    MessageKind,
    check_flowgraph,
    extract_flowgraph,
)
from repro.analysis.intervals import ConstraintSystem, implies, is_unsatisfiable, solve
from repro.analysis.lifecycle import (
    MachineSpec,
    StateMachine,
    Transition,
    check_lifecycle,
    extract_lifecycle,
)
from repro.analysis.model import (
    Exploration,
    ProductModel,
    build_product,
    check_model,
    explore,
    model_summary,
    product_dot,
)
from repro.analysis.modelcov import (
    SILENT_LABELS,
    MachineCoverage,
    check_coverage,
    coverage,
    default_coverage_baseline,
    load_corpus,
    summarize,
)
from repro.analysis.overlay import (
    check_network,
    check_overlay_graph,
    check_reachability,
    check_routing_entries,
)
from repro.analysis.plans import check_group, check_groups
from repro.analysis.satisfiability import (
    check_dead_profiles,
    check_filter,
    check_predicate,
    check_profile_filters,
)
from repro.analysis.protocol import check_protocol, collect_enums
from repro.analysis.purity import check_purity, collect_set_returning
from repro.analysis.schema import check_profile, check_query
from repro.analysis.selfcheck import (
    check_modules,
    check_package,
    check_source_module,
    default_baseline_path,
    default_package_dir,
)
from repro.analysis.source import (
    Baseline,
    PragmaIndex,
    SourceError,
    SourceModule,
    apply_pragmas,
    load_package,
    load_source,
    module_from_text,
    parse_code_spec,
    spec_matches,
)
from repro.analysis.style import check_style

__all__ = [
    "Baseline",
    "PragmaIndex",
    "SourceError",
    "SourceModule",
    "apply_pragmas",
    "check_coverage",
    "check_flowgraph",
    "check_lifecycle",
    "check_model",
    "check_modules",
    "check_package",
    "check_protocol",
    "check_purity",
    "check_source_module",
    "check_style",
    "collect_enums",
    "collect_set_returning",
    "conformance_violations",
    "coverage",
    "build_product",
    "explore",
    "extract_flowgraph",
    "extract_lifecycle",
    "default_baseline_path",
    "default_coverage_baseline",
    "default_package_dir",
    "load_corpus",
    "load_package",
    "load_source",
    "model_summary",
    "module_from_text",
    "product_dot",
    "summarize",
    "transition_key",
    "parse_code_spec",
    "spec_matches",
    "BUILTIN_WORKLOADS",
    "CODES",
    "ConstraintSystem",
    "Diagnostic",
    "DiagnosticError",
    "Exploration",
    "FlowGraph",
    "MachineCoverage",
    "MachineSpec",
    "MessageKind",
    "ProductModel",
    "SILENT_LABELS",
    "Report",
    "Severity",
    "StateMachine",
    "Transition",
    "Workload",
    "analyze_builtin",
    "analyze_query",
    "analyze_workload",
    "build_network",
    "builtin_workload",
    "check_dead_profiles",
    "check_filter",
    "check_group",
    "check_groups",
    "check_network",
    "check_overlay_graph",
    "check_predicate",
    "check_profile",
    "check_profile_filters",
    "check_query",
    "check_reachability",
    "check_routing_entries",
    "implies",
    "is_unsatisfiable",
    "solve",
]
