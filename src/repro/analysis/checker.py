"""The analyzer entry points: check queries, workloads and networks.

:func:`analyze_query` runs the per-query checks (COS1xx + COS2xx).
:func:`analyze_workload` takes a whole workload — catalog plus query
list — end to end through the *static* pipeline the running system
would use: per-query checks, source-profile checks, greedy grouping,
per-group plan checks (COS3xx), and finally a deterministic overlay is
built (brokers, advertisements, subscriptions — but not a single
published datagram) and its routing state is checked (COS4xx).

Everything is pure: no network, no SPE execution, no randomness beyond
the workload's own fixed seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.diagnostics import Report
from repro.analysis.overlay import check_network
from repro.analysis.plans import check_groups
from repro.analysis.satisfiability import (
    check_predicate,
    check_profile_filters,
)
from repro.analysis.schema import check_profile, check_query, source_name
from repro.cbn.network import ContentBasedNetwork
from repro.core.grouping import GroupingOptimizer, QueryGroup
from repro.core.merging import MergeError
from repro.core.profiles import (
    ProfileCompositionError,
    direct_result_profile,
    result_profile,
    source_profile,
)
from repro.cql.ast import ContinuousQuery, QueryError
from repro.cql.parser import parse_query
from repro.cql.schema import Catalog
from repro.overlay.tree import DisseminationTree
from repro.workload.auction import TABLE1_Q1, TABLE1_Q2, TABLE1_Q3, auction_catalog
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import sensorscope_catalog


@dataclass
class Workload:
    """A named catalog + query list the analyzer can check end to end."""

    name: str
    catalog: Catalog
    queries: List[ContinuousQuery] = field(default_factory=list)


#: Names accepted by :func:`builtin_workload` (and ``repro check``).
BUILTIN_WORKLOADS = ("auction", "sensorscope")


def builtin_workload(name: str) -> Workload:
    """The repo's example workloads, built deterministically."""
    if name == "auction":
        catalog = auction_catalog()
        queries = [
            parse_query(TABLE1_Q1, name="q1"),
            parse_query(TABLE1_Q2, name="q2"),
            parse_query(TABLE1_Q3, name="q3"),
        ]
        return Workload(name, catalog, queries)
    if name == "sensorscope":
        catalog = sensorscope_catalog(8, rng=random.Random(7))
        generator = QueryWorkload(
            catalog,
            WorkloadConfig(skew=1.0, join_fraction=0.2, seed=7),
        )
        return Workload(name, catalog, generator.generate(20))
    raise ValueError(
        f"unknown workload {name!r}; expected one of {BUILTIN_WORKLOADS}"
    )


def analyze_query(query: ContinuousQuery, catalog: Catalog) -> Report:
    """Per-query checks: schema (COS1xx) then satisfiability (COS2xx).

    Satisfiability is skipped when schema errors are present — type
    checks against unknown attributes would only cascade.
    """
    report = check_query(query, catalog)
    if not report.errors:
        report.extend(check_predicate(query, catalog))
    return report


def analyze_workload(workload: Workload) -> Report:
    """Every check family over one workload; see the module docstring."""
    report = Report()
    catalog = workload.catalog
    clean: List[ContinuousQuery] = []
    for query in workload.queries:
        per_query = analyze_query(query, catalog)
        report.extend(per_query)
        if not per_query.errors:
            clean.append(query)
    for query in clean:
        label = f"{source_name(query)}:source-profile"
        try:
            profile = source_profile(query, catalog)
        except (QueryError, ProfileCompositionError):
            continue  # self-joins etc.: no source profile to check
        report.extend(check_profile(profile, catalog, source=label))
        report.extend(check_profile_filters(profile, catalog, source=label))
    groups = _group(clean, catalog)
    report.extend(check_groups(groups, catalog))
    network = build_network(groups, catalog)
    report.extend(check_network(network))
    return report


def _group(
    queries: Sequence[ContinuousQuery], catalog: Catalog
) -> List[QueryGroup]:
    optimizer = GroupingOptimizer(catalog)
    for query in queries:
        if query.name is None:
            continue  # grouping requires named queries
        try:
            optimizer.add(query)
        except (QueryError, MergeError, ValueError):
            continue  # self-joins and duplicates stay ungrouped
    return optimizer.groups


def build_network(
    groups: Sequence[QueryGroup], catalog: Catalog
) -> ContentBasedNetwork:
    """A deterministic five-broker line overlay carrying the workload.

    Publishers advertise every catalog stream at one end, each group's
    representative is fetched by a processor in the middle via its
    source profile, and each member's user at the other end subscribes
    the re-tightening result profile against the group's result stream.
    This is exactly the subscription structure the running system
    installs, minus any data flow — which is what makes the routing
    state statically checkable.
    """
    nodes = list(range(5))
    tree = DisseminationTree(
        edges=[(i, i + 1) for i in range(4)], nodes=nodes
    )
    network = ContentBasedNetwork(tree, catalog.copy())
    publisher_node, processor_node, user_node = 0, 2, 4
    for schema in catalog:
        network.advertise(schema.name, publisher_node, schema)
    for group in groups:
        result_stream = f"result:{group.group_id}"
        try:
            fetch = source_profile(group.representative, catalog)
        except (QueryError, ProfileCompositionError):
            continue
        network.subscribe(fetch, processor_node, f"src:{group.group_id}")
        network.advertise(result_stream, processor_node)
        for member in group.members:
            sid = f"res:{member.name or group.group_id}"
            if len(group.members) == 1:
                profile = direct_result_profile(result_stream)
            else:
                try:
                    profile = result_profile(
                        member, group.representative, catalog, result_stream
                    )
                except ProfileCompositionError:
                    # Unrecoverable members are COS302/303 findings; the
                    # system would fall back to a direct subscription.
                    profile = direct_result_profile(result_stream)
            network.subscribe(profile, user_node, sid)
    return network


def analyze_builtin(name: str) -> Report:
    """Convenience: :func:`analyze_workload` on a builtin workload."""
    return analyze_workload(builtin_workload(name))
