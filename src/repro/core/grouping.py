"""Query groups and the incremental greedy grouping optimizer.

Section 4: *"each processor maintains a number of query groups such
that queries inside each group have overlapping results and it is
beneficial to rewrite these queries into one query q [...] The benefit
of the rewriting can be estimated as sum_i C(q_i) - C(q), where C(q) is
the estimated rate (bps) of the result stream of q. [...] An
incremental greedy algorithm is used to optimize the query grouping,
where each new query is assigned to the query group that can achieve
the maximum benefit."*
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog
from repro.core.cost import CostModel
from repro.core.merging import MergeError, mergeable, representative


@dataclass
class QueryGroup:
    """One group of merged queries and its representative."""

    group_id: str
    members: List[ContinuousQuery]
    representative: ContinuousQuery
    representative_rate: float

    def member_names(self) -> List[str]:
        return [q.name or "?" for q in self.members]

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class GroupingDecision:
    """Where a newly added query went."""

    query: ContinuousQuery
    group: QueryGroup
    created_group: bool
    benefit_delta: float


class GroupingOptimizer:
    """Incremental greedy query grouping.

    Each :meth:`add` evaluates, for every structurally compatible
    group, the benefit delta of extending the group with the new query:

        delta = C(rep_old) + C(q_new) - C(rep_new)

    (the change in total representative output rate).  The query joins
    the group with the largest positive delta, or founds a singleton
    group when none is positive.

    ``merge_threshold`` requires a minimum positive delta before a
    merge is accepted (0.0 reproduces the paper's "maximum benefit"
    rule).
    """

    def __init__(
        self,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
        merge_threshold: float = 0.0,
    ) -> None:
        self.catalog = catalog
        self.cost_model = cost_model or CostModel()
        self.merge_threshold = merge_threshold
        self._groups: Dict[str, QueryGroup] = {}
        #: structural key (stream set + aggregate signature) -> group ids,
        #: so a new query is only evaluated against compatible groups.
        self._index: Dict[Tuple, List[str]] = {}
        self._group_of_query: Dict[str, str] = {}
        self._counter = itertools.count()

    @staticmethod
    def _structure_key(query: ContinuousQuery) -> Tuple:
        streams = tuple(sorted(set(query.stream_names)))
        if not query.is_aggregate:
            return (streams, None)
        aggs = tuple(
            (agg.func, agg.arg.key if agg.arg is not None else None)
            for agg in query.aggregates
        )
        groups = tuple(sorted(attr.key for attr in query.group_by))
        return (streams, (groups, aggs))

    # -- queries --------------------------------------------------------------

    @property
    def groups(self) -> List[QueryGroup]:
        return list(self._groups.values())

    @property
    def group_count(self) -> int:
        return len(self._groups)

    @property
    def query_count(self) -> int:
        return sum(len(group) for group in self._groups.values())

    def grouping_ratio(self) -> float:
        """#groups / #queries — Figure 4(b)'s metric (1.0 when empty)."""
        if self.query_count == 0:
            return 1.0
        return self.group_count / self.query_count

    def group_of(self, query_name: str) -> Optional[QueryGroup]:
        group_id = self._group_of_query.get(query_name)
        if group_id is None:
            return None
        return self._groups.get(group_id)

    # -- benefit accounting ------------------------------------------------------

    def total_unmerged_rate(self) -> float:
        """sum over all queries of C(q): the no-merging output rate."""
        return sum(
            self.cost_model.result_rate(member, self.catalog)
            for group in self._groups.values()
            for member in group.members
        )

    def total_merged_rate(self) -> float:
        """sum over groups of C(representative)."""
        return sum(group.representative_rate for group in self._groups.values())

    def total_benefit(self) -> float:
        """sum_i C(q_i) - sum_groups C(rep): the paper's benefit."""
        return self.total_unmerged_rate() - self.total_merged_rate()

    def benefit_ratio(self) -> float:
        """Benefit as a fraction of the unmerged rate (0 when empty)."""
        unmerged = self.total_unmerged_rate()
        if unmerged == 0:
            return 0.0
        return self.total_benefit() / unmerged

    # -- the greedy algorithm --------------------------------------------------------

    def add(self, query: ContinuousQuery) -> GroupingDecision:
        """Assign ``query`` to the best group (or a new singleton).

        The representative of an extended group is composed
        *incrementally* — ``representative([rep_old, q_new])`` — which
        is associative with batch composition for the predicate,
        windows and projection (the incremental projection may keep a
        few extra attributes; it is never smaller than any member
        requires).
        """
        if query.name is None:
            raise ValueError("queries must be named before grouping")
        if query.name in self._group_of_query:
            raise ValueError(f"duplicate query name {query.name!r}")
        query = query.canonical(self.catalog)
        query_rate = self.cost_model.result_rate(query, self.catalog)
        best_delta = self.merge_threshold
        best: Optional[Tuple[QueryGroup, ContinuousQuery, float]] = None
        key = self._structure_key(query)
        for group_id in self._index.get(key, ()):
            group = self._groups[group_id]
            if not mergeable(group.representative, query, self.catalog):
                continue
            try:
                candidate = representative(
                    [group.representative, query],
                    self.catalog,
                    name=f"{group.group_id}:rep",
                    verify=False,
                )
            except MergeError:
                continue
            candidate_rate = self.cost_model.result_rate(candidate, self.catalog)
            delta = group.representative_rate + query_rate - candidate_rate
            if delta > best_delta:
                best_delta = delta
                best = (group, candidate, candidate_rate)
        if best is not None:
            group, candidate, candidate_rate = best
            group.members.append(query)
            group.representative = candidate
            group.representative_rate = candidate_rate
            self._group_of_query[query.name] = group.group_id
            return GroupingDecision(query, group, False, best_delta)
        group = self._new_group(query, query_rate)
        return GroupingDecision(query, group, True, 0.0)

    def add_all(
        self, queries: Iterable[ContinuousQuery]
    ) -> List[GroupingDecision]:
        return [self.add(query) for query in queries]

    def remove(self, query_name: str) -> None:
        """Remove a query; its group's representative is recomposed.

        An emptied group disappears.  (The paper does not specify
        removal; recomposition keeps the invariant that the
        representative is exactly the merge of the members.)
        """
        group = self.group_of(query_name)
        if group is None:
            raise KeyError(f"unknown query {query_name!r}")
        group.members = [m for m in group.members if m.name != query_name]
        del self._group_of_query[query_name]
        if not group.members:
            del self._groups[group.group_id]
            key = self._structure_key(group.representative)
            self._index[key] = [
                gid for gid in self._index.get(key, []) if gid != group.group_id
            ]
            return
        group.representative = representative(
            group.members, self.catalog, name=f"{group.group_id}:rep"
        )
        group.representative_rate = self.cost_model.result_rate(
            group.representative, self.catalog
        )

    def extract_group(self, group_id: str) -> List[ContinuousQuery]:
        """Remove a whole group intact; returns its members in order.

        Unlike :meth:`remove` there is no recomposition — the group
        leaves as one unit (live migration moves groups whole, so the
        merge the optimizer found is preserved at the destination).
        """
        group = self._groups.pop(group_id, None)
        if group is None:
            raise KeyError(f"unknown group {group_id!r}")
        key = self._structure_key(group.representative)
        self._index[key] = [
            gid for gid in self._index.get(key, []) if gid != group_id
        ]
        for member in group.members:
            del self._group_of_query[member.name]
        return list(group.members)

    def reoptimize(self) -> int:
        """Rebuild the grouping from scratch (periodic re-grouping).

        The incremental greedy is order-sensitive: an early query can
        found a group that later arrivals would have partitioned
        better.  Re-inserting every query in descending rate order
        (big flows first anchor the groups) often recovers some of that
        loss.  Returns the change in group count (positive = fewer
        groups).  The paper only describes the incremental algorithm;
        this is the "periodic re-grouping" ablation of DESIGN.md.
        """
        queries: List[ContinuousQuery] = [
            member for group in self._groups.values() for member in group.members
        ]
        before = self.group_count
        self._groups.clear()
        self._index.clear()
        self._group_of_query.clear()
        queries.sort(
            key=lambda q: self.cost_model.result_rate(q, self.catalog),
            reverse=True,
        )
        for query in queries:
            self.add(query)
        return before - self.group_count

    def _new_group(self, query: ContinuousQuery, rate: float) -> QueryGroup:
        group_id = f"g{next(self._counter)}"
        canonical = representative([query], self.catalog, name=f"{group_id}:rep")
        group = QueryGroup(group_id, [query], canonical, rate)
        self._groups[group_id] = group
        self._index.setdefault(self._structure_key(query), []).append(group_id)
        self._group_of_query[query.name] = group_id
        return group
