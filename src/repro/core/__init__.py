"""The COSMOS query layer — the paper's primary contribution (section 4).

The query layer of a processor:

* decides containment between continuous queries
  (:mod:`repro.core.containment` — Lemma 1, Theorems 1 and 2);
* rewrites groups of overlapping queries into a single *representative
  query* (:mod:`repro.core.merging`);
* composes the data-interest profiles that retrieve source data and
  split the representative result stream back into per-user results
  (:mod:`repro.core.profiles`);
* estimates result-stream rates to price the rewriting benefit
  (:mod:`repro.core.cost`);
* maintains query groups with an incremental greedy optimizer
  (:mod:`repro.core.grouping`);
* ties it all together per processor (:mod:`repro.core.manager`).
"""

from __future__ import annotations

from repro.core.containment import contains, unbounded_contains
from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer, QueryGroup
from repro.core.manager import QueryManager
from repro.core.merging import MergeError, mergeable, merge_queries, representative
from repro.core.profiles import (
    direct_result_profile,
    result_profile,
    source_profile,
)

__all__ = [
    "CostModel",
    "GroupingOptimizer",
    "MergeError",
    "QueryGroup",
    "QueryManager",
    "contains",
    "direct_result_profile",
    "mergeable",
    "merge_queries",
    "representative",
    "result_profile",
    "source_profile",
    "unbounded_contains",
]
