"""Profile composition (sections 3.1 and 4).

Three kinds of data-interest profiles are composed by the query layer:

* :func:`source_profile` — for a processor to retrieve a query's source
  data: the selection predicates applicable to each individual stream
  become the filters, and every attribute the query mentions becomes
  the projection (the paper's ⟨S, P, F⟩ example in section 4).
* :func:`direct_result_profile` — for a user to retrieve an unshared
  result stream: the unique result-stream name with no filter and no
  projection.
* :func:`result_profile` — for a user whose query was merged into a
  representative: a profile on the representative's result stream that
  *re-tightens* "the constraints that have been loosened in the
  representative query": the member's residual selection/join atoms
  plus the Lemma 1 window constraints, and the member's own projection.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cql.ast import ContinuousQuery
from repro.cql.predicates import (
    Atom,
    AttrRef,
    Comparison,
    Conjunction,
    DifferenceConstraint,
    JoinPredicate,
)
from repro.cql.schema import Catalog
from repro.core.merging import MergeError, residual_atoms, window_residuals


class ProfileCompositionError(Exception):
    """Raised when a profile cannot be composed (unrecoverable member)."""


def source_profile(
    query: ContinuousQuery, catalog: Catalog, subscriber: Optional[str] = None
) -> Profile:
    """The profile a processor subscribes to fetch a query's inputs.

    Per stream: the projection is every attribute of that stream the
    query references anywhere; the filter is the conjunction of the
    query's single-attribute constraints on that stream (join
    predicates and cross-stream constraints cannot be evaluated per
    datagram and are left to the SPE).

    Example (paper, section 4): for ``SELECT R.A, S.C FROM R [Now],
    S [Now] WHERE R.B = S.B AND R.A > 10`` it returns S = {R, S},
    P = {R: {A, B}, S: {B, C}}, F = {R.A > 10 on R}.  (We additionally
    propagate constants through equijoin links — had the constraint
    been ``R.B > 10``, the S-side filter would gain ``S.B > 10`` — which
    is strictly tighter and still correct.)
    """
    canonical = query.canonical(catalog)
    projections: Dict[str, Set[str]] = {
        ref.stream: set() for ref in canonical.streams
    }
    for attr in canonical.projected_attributes(catalog):
        if attr.qualifier in projections:
            projections[attr.qualifier].add(attr.name)
    for term in canonical.predicate.referenced_terms():
        attr = AttrRef.parse(term)
        if attr.qualifier in projections:
            projections[attr.qualifier].add(attr.name)
    for attr in canonical.group_by:
        if attr.qualifier in projections:
            projections[attr.qualifier].add(attr.name)

    filters: List[Filter] = []
    closed = canonical.predicate.closure()
    for ref in canonical.streams:
        prefix = f"{ref.stream}."
        own_terms = {
            term
            for term in closed.referenced_terms()
            if term.startswith(prefix)
        }
        condition = closed.restrict_to(own_terms)
        # Drop equality links: a link between two attributes of the same
        # stream is evaluable per datagram, links across streams are
        # not — restrict_to already removed the latter.
        condition = _strip_prefix(condition, prefix)
        filters.append(Filter(ref.stream, condition))

    return Profile(
        {stream: frozenset(attrs) for stream, attrs in projections.items()},
        filters,
        subscriber=subscriber,
    )


def _strip_prefix(condition: Conjunction, prefix: str) -> Conjunction:
    """Rewrite ``R.A``-style terms to the raw attribute names of the
    stream's datagrams."""
    mapping = {
        term: term[len(prefix):]
        for term in condition.referenced_terms()
        if term.startswith(prefix)
    }
    return condition.rename(mapping)


def direct_result_profile(
    result_stream: str, subscriber: Optional[str] = None
) -> Profile:
    """Retrieve an unshared result stream: no filter, no projection."""
    return Profile({result_stream: ALL_ATTRIBUTES}, (), subscriber=subscriber)


def result_profile(
    member: ContinuousQuery,
    rep: ContinuousQuery,
    catalog: Catalog,
    result_stream: str,
    subscriber: Optional[str] = None,
) -> Profile:
    """Re-tightening profile for a merged member query.

    The returned profile, subscribed against the representative's
    result stream, reproduces exactly the member's result stream: the
    filter re-applies the member's residual constraints (including the
    Lemma 1 window constraints for windows the representative widened)
    and the projection keeps the member's own output attributes.

    For the paper's Table 1 example this yields
    ``p1 = ⟨{s3}, {O.*}, {-3h <= O.timestamp - C.timestamp <= 0}⟩``
    for q1 against the representative q3.
    """
    canonical_member = member.canonical(catalog)
    canonical_rep = rep.canonical(catalog)
    rep_outputs = set(canonical_rep.output_attribute_names(catalog))

    atoms: List[Atom] = list(
        residual_atoms(canonical_member, canonical_rep.predicate)
    )
    atoms.extend(window_residuals(canonical_member, canonical_rep))
    needed = set()
    for atom in atoms:
        needed |= Conjunction.from_atoms([atom]).referenced_terms()
    missing = needed - rep_outputs
    if missing:
        raise ProfileCompositionError(
            f"member {member.name!r} cannot be recovered: representative "
            f"result stream lacks attributes {sorted(missing)}"
        )
    member_outputs = canonical_member.output_attribute_names(catalog)
    not_provided = set(member_outputs) - rep_outputs
    if not_provided:
        raise ProfileCompositionError(
            f"member {member.name!r} outputs {sorted(not_provided)} missing "
            "from the representative result stream"
        )
    condition = Conjunction.from_atoms(atoms)
    return Profile(
        {result_stream: frozenset(member_outputs)},
        [Filter(result_stream, condition)],
        subscriber=subscriber,
    )
