"""Result-stream rate estimation: the C(q) of section 4.

The benefit of rewriting a query group into one representative query is
estimated as ``sum_i C(q_i) - C(q)`` where ``C(q)`` is the estimated
rate (bytes per second) of the result stream of ``q``.  This module
implements that estimator with textbook System-R style assumptions:

* attribute values uniform over the schema-declared domain;
* independent predicates (selectivities multiply);
* equijoin selectivity ``1 / max(V(a), V(b))`` over the attributes'
  domain sizes;
* a window join of streams with (filtered) arrival rates ``r_i`` and
  window sizes ``T_i`` produces ``(prod_i r_i) * (sum_i prod_{j != i}
  T_j) * join_selectivity`` result tuples per second (every arrival on
  stream *i* meets the windowed contents of the other streams).

``[Now]`` windows are priced with a configurable epsilon (tuples are
simultaneous within one application tick) and unbounded windows are
capped at a configurable horizon so estimates stay finite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cql.ast import ContinuousQuery
from repro.cql.predicates import AttrRef, Conjunction, Interval
from repro.cql.schema import Attribute, Catalog, SchemaError


@dataclass
class CostModel:
    """Estimator for result-stream rates (bytes/second).

    Parameters
    ----------
    now_epsilon:
        Effective size (seconds) of a ``[Now]`` window: tuples count as
        simultaneous within one application tick.
    horizon:
        Cap (seconds) applied to unbounded windows.
    default_equality_selectivity:
        Selectivity of an equality on an attribute without a declared
        finite domain.
    default_timestamp_width:
        Wire width of the implicit per-stream timestamp attribute.
    """

    now_epsilon: float = 1.0
    horizon: float = 86400.0
    default_equality_selectivity: float = 0.01
    default_timestamp_width: int = 8

    # -- public API -------------------------------------------------------------

    def result_rate(self, query: ContinuousQuery, catalog: Catalog) -> float:
        """Estimated bytes/second of the result stream of ``query``."""
        tuple_rate = self.result_tuple_rate(query, catalog)
        width = self.result_width(query, catalog)
        return tuple_rate * width

    def result_tuple_rate(self, query: ContinuousQuery, catalog: Catalog) -> float:
        """Estimated result tuples/second."""
        closed = query.predicate.closure()
        filtered_rates: List[float] = []
        windows: List[float] = []
        for ref in query.streams:
            schema = catalog.get(ref.stream)
            sel = self.stream_selectivity(closed, ref.name, ref.stream, catalog)
            filtered_rates.append(schema.rate * sel)
            windows.append(self.effective_window(ref.window.size))
        if query.is_aggregate:
            # One updated group row per qualifying arrival.
            return filtered_rates[0]
        if len(query.streams) == 1:
            return filtered_rates[0]
        join_sel = self.join_selectivity(query, catalog)
        rate_product = math.prod(filtered_rates)
        window_sum = 0.0
        for i in range(len(windows)):
            others = math.prod(w for j, w in enumerate(windows) if j != i)
            window_sum += others
        return rate_product * window_sum * join_sel

    def result_width(self, query: ContinuousQuery, catalog: Catalog) -> float:
        """Wire width (bytes) of one result tuple."""
        width = 0.0
        if query.is_aggregate:
            for attr in query.group_by:
                width += self._attribute_width(query, attr, catalog)
            width += 8.0 * len(query.aggregates)
            return width
        for attr in query.projected_attributes(catalog):
            width += self._attribute_width(query, attr, catalog)
        return width

    def source_flow_rate(
        self, query: ContinuousQuery, stream: str, catalog: Catalog
    ) -> float:
        """Bytes/second of one source flow feeding ``query``.

        The flow is filtered by the query's single-stream selections and
        projected to the attributes the query references on that stream
        (what a source profile admits — also what placement-optimised
        unicast systems ship).
        """
        canonical = query.canonical(catalog)
        schema = catalog.get(stream)
        selectivity = self.stream_selectivity(
            canonical.predicate.closure(), stream, stream, catalog
        )
        needed = {
            attr.name
            for attr in canonical.projected_attributes(catalog)
            if attr.qualifier == stream and schema.has_attribute(attr.name)
        }
        for term in canonical.predicate.referenced_terms():
            qualifier, __, name = term.partition(".")
            if qualifier == stream and schema.has_attribute(name):
                needed.add(name)
        return schema.rate * selectivity * schema.width_of(needed)

    # -- components ------------------------------------------------------------------

    def effective_window(self, size: float) -> float:
        """Window size as priced by the model (epsilon/horizon applied)."""
        if math.isinf(size):
            return self.horizon
        return max(size, self.now_epsilon)

    def stream_selectivity(
        self,
        predicate: Conjunction,
        qualifier: str,
        stream: str,
        catalog: Catalog,
    ) -> float:
        """Combined selectivity of per-attribute constraints on one stream.

        Only interval/exclusion constraints on ``qualifier``-prefixed
        terms participate; join predicates are priced separately.
        """
        schema = catalog.get(stream)
        selectivity = 1.0
        prefix = f"{qualifier}."
        for term, interval in predicate.intervals.items():
            if not term.startswith(prefix):
                continue
            attr_name = term[len(prefix):]
            attribute = self._lookup_attribute(schema, attr_name)
            selectivity *= self.interval_selectivity(interval, attribute)
        for term, excluded in predicate.excluded.items():
            if not term.startswith(prefix):
                continue
            attr_name = term[len(prefix):]
            attribute = self._lookup_attribute(schema, attr_name)
            eq = self.equality_selectivity(attribute)
            selectivity *= max(0.0, 1.0 - eq * len(excluded))
        return selectivity

    def interval_selectivity(
        self, interval: Interval, attribute: Optional[Attribute]
    ) -> float:
        """Fraction of an attribute's domain an interval admits."""
        if interval.is_empty:
            return 0.0
        if interval.is_point:
            return self.equality_selectivity(attribute)
        if (
            attribute is None
            or attribute.lo is None
            or attribute.hi is None
            or not attribute.is_numeric
        ):
            # Unknown domain: half per bounded side, textbook default.
            bounded_sides = (interval.lo is not None) + (interval.hi is not None)
            return 0.5 ** bounded_sides
        domain_lo, domain_hi = attribute.lo, attribute.hi
        length = domain_hi - domain_lo
        if length <= 0:
            return 1.0
        lo = domain_lo if interval.lo is None else max(interval.lo, domain_lo)
        hi = domain_hi if interval.hi is None else min(interval.hi, domain_hi)
        if isinstance(lo, str) or isinstance(hi, str):
            return 1.0
        if hi <= lo:
            # Degenerate overlap: at most a point of a continuous domain.
            return self.equality_selectivity(attribute) if hi == lo else 0.0
        return (hi - lo) / length

    def equality_selectivity(self, attribute: Optional[Attribute]) -> float:
        """Selectivity of ``attr = constant``."""
        size = self._domain_size(attribute)
        if size is None:
            return self.default_equality_selectivity
        return 1.0 / size

    def join_selectivity(self, query: ContinuousQuery, catalog: Catalog) -> float:
        """Combined selectivity of the query's equijoin links."""
        selectivity = 1.0
        for a, b in query.predicate.links:
            size_a = self._term_domain_size(query, a, catalog)
            size_b = self._term_domain_size(query, b, catalog)
            sizes = [s for s in (size_a, size_b) if s is not None]
            if sizes:
                selectivity *= 1.0 / max(sizes)
            else:
                selectivity *= self.default_equality_selectivity
        return selectivity

    # -- helpers --------------------------------------------------------------------------

    def _attribute_width(
        self, query: ContinuousQuery, attr: AttrRef, catalog: Catalog
    ) -> float:
        if attr.qualifier is None:
            return float(self.default_timestamp_width)
        ref = query.stream_ref(attr.qualifier)
        schema = catalog.get(ref.stream)
        attribute = self._lookup_attribute(schema, attr.name)
        if attribute is None:
            return float(self.default_timestamp_width)
        return float(attribute.byte_width)

    def _term_domain_size(
        self, query: ContinuousQuery, term: str, catalog: Catalog
    ) -> Optional[float]:
        attr = AttrRef.parse(term)
        if attr.qualifier is None:
            return None
        try:
            ref = query.stream_ref(attr.qualifier)
            schema = catalog.get(ref.stream)
        except Exception:
            return None
        return self._domain_size(self._lookup_attribute(schema, attr.name))

    @staticmethod
    def _lookup_attribute(schema, name: str) -> Optional[Attribute]:
        if schema.has_attribute(name):
            return schema.attribute(name)
        if name == "timestamp":
            return Attribute("timestamp", "timestamp")
        return None

    @staticmethod
    def _domain_size(attribute: Optional[Attribute]) -> Optional[float]:
        if attribute is None or attribute.lo is None or attribute.hi is None:
            return None
        if not attribute.is_numeric:
            return None
        if attribute.type == "int":
            return float(int(attribute.hi) - int(attribute.lo) + 1)
        return None
