"""Containment of continuous queries (section 4).

Definition 1: ``q1 ⊑ q2`` iff for every stream instance S and every
application time instant τ, ``q1(S, τ) ⊆ q2(S, τ)``.  As in the paper's
running example (q1, q2 ⊑ q3 of Table 1), the subset relation is taken
*modulo projection*: every q1 result tuple must be the projection of a
q2 result tuple, so that q1's results can be reconstructed from q2's
result stream by the CBN's filtering/projection machinery alone.

The decision procedure follows the paper exactly:

* **Lemma 1** fixes the pairing semantics of window joins: tuples
  ``t1`` (window ``T1``) and ``t2`` (window ``T2``) produce a join
  result iff they satisfy the join predicates and
  ``-T1 <= t1.timestamp - t2.timestamp <= T2``.
* **Theorem 1** (select-project-join): ``Q1 ⊑ Q2`` if
  (1) ``Q1^inf ⊑ Q2^inf`` and (2) every window of Q1 is at most the
  corresponding window of Q2.
* **Theorem 2** (aggregates): ``Q1 ⊑ Q2`` if (1) ``Q1^inf ⊑ Q2^inf``
  and (2) the corresponding windows are *equal* (window size changes
  aggregate values, not just their set).

``Q^inf`` containment for the conjunctive fragment reduces to
predicate implication plus projection inclusion; it inherits the
soundness (not completeness) of
:meth:`repro.cql.predicates.Conjunction.implies`.  All checks
canonicalise both queries first, so alias choices never matter.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.cql.ast import Aggregate, ContinuousQuery, QueryError
from repro.cql.schema import Catalog


def _canonical_pair(
    q1: ContinuousQuery, q2: ContinuousQuery, catalog: Catalog
) -> Optional[Tuple[ContinuousQuery, ContinuousQuery]]:
    """Canonicalise both queries; ``None`` when they cannot be compared."""
    if q1.has_self_join or q2.has_self_join:
        return None
    c1 = q1.canonical(catalog)
    c2 = q2.canonical(catalog)
    if set(c1.stream_names) != set(c2.stream_names):
        return None
    return c1, c2


def _aggregate_signature(query: ContinuousQuery) -> Tuple:
    """Grouping attributes + aggregate list, for Theorem 2's side
    condition that compared aggregate queries compute the same thing."""
    aggs = tuple(
        (agg.func, agg.arg.key if agg.arg is not None else None)
        for agg in query.aggregates
    )
    groups = tuple(sorted(attr.key for attr in query.group_by))
    return groups, aggs


def unbounded_contains(
    q1: ContinuousQuery, q2: ContinuousQuery, catalog: Catalog
) -> bool:
    """``Q1^inf ⊑ Q2^inf``: containment ignoring windows.

    For the conjunctive fragment: same canonical stream set, q1's
    predicate implies q2's, and q1's output attributes are a subset of
    q2's (projection-modulo containment).  Aggregate queries must also
    share grouping attributes and aggregate list.
    """
    pair = _canonical_pair(q1, q2, catalog)
    if pair is None:
        return False
    c1, c2 = pair
    if c1.is_aggregate != c2.is_aggregate:
        return False
    if c1.is_aggregate and _aggregate_signature(c1) != _aggregate_signature(c2):
        return False
    if not c1.predicate.implies(c2.predicate):
        return False
    if c1.is_aggregate and not _aggregate_filters_compatible(c1, c2):
        return False
    out1 = set(c1.output_attribute_names(catalog))
    out2 = set(c2.output_attribute_names(catalog))
    return out1 <= out2


def _aggregate_filters_compatible(
    c1: ContinuousQuery, c2: ContinuousQuery
) -> bool:
    """Aggregate-specific side condition on the selection predicates.

    A selection on a *grouping* attribute commutes with the aggregation
    (it only removes whole groups), so it may differ between contained
    and containing query.  A selection on any other attribute changes
    the aggregate *values*; those parts of the predicates must be
    equivalent or the result rows of ``c1`` simply do not appear in
    ``c2``'s result stream.
    """
    group_keys = {attr.key for attr in c1.group_by}
    terms = (
        c1.predicate.referenced_terms() | c2.predicate.referenced_terms()
    ) - group_keys
    rest1 = c1.predicate.restrict_to(terms)
    rest2 = c2.predicate.restrict_to(terms)
    return rest1.equivalent(rest2)


def window_vector(query: ContinuousQuery) -> Dict[str, float]:
    """Canonical stream name -> window size (assumes no self-join)."""
    return {ref.stream: ref.window.size for ref in query.streams}


def contains(
    q1: ContinuousQuery, q2: ContinuousQuery, catalog: Catalog
) -> bool:
    """Is ``q1`` contained by ``q2`` (``q1 ⊑ q2``, Definition 1)?

    Dispatches to Theorem 1 (SPJ) or Theorem 2 (aggregates).
    """
    pair = _canonical_pair(q1, q2, catalog)
    if pair is None:
        return False
    c1, c2 = pair
    if not unbounded_contains(c1, c2, catalog):
        return False
    w1 = window_vector(c1)
    w2 = window_vector(c2)
    if c1.is_aggregate:
        # Theorem 2 condition (2): equal windows.
        return all(w1[stream] == w2[stream] for stream in w1)
    # Theorem 1 condition (2): every window of Q1 at most Q2's.
    return all(w1[stream] <= w2[stream] for stream in w1)


def equivalent(
    q1: ContinuousQuery, q2: ContinuousQuery, catalog: Catalog
) -> bool:
    """Mutual containment (same result streams, modulo projection order)."""
    return contains(q1, q2, catalog) and contains(q2, q1, catalog)
