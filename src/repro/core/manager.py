"""The per-processor query management module (sections 2 and 4).

The :class:`QueryManager` is the glue of the query layer on one
processor: it accepts user queries, runs the grouping optimizer, keeps
the local SPE in sync ("a new query or a modification of an existing
query is sent to the SPE"), and composes the profiles everybody needs:

* the processor's own *source profile* for the representative query
  (how it pulls source data out of the CBN), and
* each user's *result profile* (how the user pulls their query's
  results out of the representative's result stream).

The manager is deliberately network-agnostic: it returns profile
updates and lets the caller (:mod:`repro.system.node`) install them
into the CBN, so it can be unit-tested without any network.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cbn.filters import Profile
from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog, StreamSchema
from repro.core.grouping import GroupingDecision, GroupingOptimizer, QueryGroup
from repro.core.profiles import result_profile, source_profile
from repro.core.cost import CostModel
from repro.spe.engine import StreamProcessingEngine, result_schema


@dataclass
class Submission:
    """Everything the system layer needs after one query submission.

    ``result_stream`` is the stream the submitting user must subscribe
    to, with ``user_profile`` as the subscription profile.  When the
    submission changed an existing group, the representative query was
    re-issued to the SPE and *every existing member's* profile may have
    changed: ``updated_profiles`` maps member query names to their new
    profiles (including the new member), and ``source_profile`` is the
    processor's refreshed source subscription for the group.
    """

    query: ContinuousQuery
    group: QueryGroup
    result_stream: str
    user_profile: Profile
    source_profile: Profile
    result_schema: StreamSchema
    updated_profiles: Dict[str, Profile]
    created_group: bool
    benefit_delta: float


class QueryManager:
    """Query management for a single processor.

    Parameters
    ----------
    catalog:
        Source stream schemas known to this processor.
    spe:
        The local stream processing engine (behind its wrappers).
    grouping:
        Optional pre-configured grouping optimizer; a default one is
        created otherwise.  Pass an optimizer with
        ``merge_threshold=float('inf')`` to disable merging entirely
        (the "non-share" baseline of Figure 3).
    """

    def __init__(
        self,
        catalog: Catalog,
        spe: Optional[StreamProcessingEngine] = None,
        grouping: Optional[GroupingOptimizer] = None,
        cost_model: Optional[CostModel] = None,
        namespace: str = "",
    ) -> None:
        #: Prefix for result-stream names.  Every COSMOS stream name must
        #: be globally unique, and group ids are only unique *per
        #: manager* — networked processors pass their node id here.
        self.namespace = namespace
        self.catalog = catalog
        self.spe = spe if spe is not None else StreamProcessingEngine(catalog)
        self.grouping = grouping or GroupingOptimizer(
            catalog, cost_model or CostModel()
        )
        self._counter = itertools.count()
        #: group id -> name under which its representative runs on the SPE
        self._registered: Dict[str, str] = {}

    # -- submission -----------------------------------------------------------

    def submit(self, query: ContinuousQuery, name: Optional[str] = None) -> Submission:
        """Accept a user query and reconcile SPE state and profiles."""
        if query.name is None:
            query = ContinuousQuery(
                query.select_items,
                query.streams,
                query.predicate,
                query.group_by,
                name or f"q{next(self._counter)}",
            )
        query.validate(self.catalog)
        decision = self.grouping.add(query)
        group = decision.group
        result_stream = self._result_stream_of(group)
        self._sync_spe(group, result_stream)

        updated: Dict[str, Profile] = {}
        for member in group.members:
            updated[member.name] = result_profile(
                member,
                group.representative,
                self.catalog,
                result_stream,
                subscriber=member.name,
            )
        return Submission(
            query=query,
            group=group,
            result_stream=result_stream,
            user_profile=updated[query.name],
            source_profile=source_profile(
                group.representative, self.catalog, subscriber=group.group_id
            ),
            result_schema=result_schema(
                group.representative.canonical(self.catalog),
                self.catalog,
                result_stream,
            ),
            updated_profiles=updated,
            created_group=decision.created_group,
            benefit_delta=decision.benefit_delta,
        )

    def result_profiles_of(self, group: QueryGroup) -> Dict[str, Profile]:
        """Current re-tightening profiles of every member of ``group``.

        Needed whenever the representative changed (a member joined *or
        left*): the result stream's content changed, so every member's
        subscription must be recomposed against the new representative.
        """
        result_stream = self._result_stream_of(group)
        return {
            member.name: result_profile(
                member,
                group.representative,
                self.catalog,
                result_stream,
                subscriber=member.name,
            )
            for member in group.members
        }

    def withdraw(self, query_name: str) -> Optional[QueryGroup]:
        """Remove a query; returns the (recomposed) group or ``None``
        when the group vanished with its last member.

        Callers wiring a network must refresh the surviving members'
        result subscriptions with :meth:`result_profiles_of` — the
        narrowed representative may no longer carry attributes the old
        profiles referenced."""
        group = self.grouping.group_of(query_name)
        if group is None:
            raise KeyError(f"unknown query {query_name!r}")
        group_id = group.group_id
        self.grouping.remove(query_name)
        survivor = next(
            (g for g in self.grouping.groups if g.group_id == group_id), None
        )
        if survivor is None:
            registered = self._registered.pop(group_id, None)
            if registered is not None:
                self.spe.deregister(registered)
            return None
        self._sync_spe(survivor, self._result_stream_of(survivor))
        return survivor

    def release_group(self, group_id: str) -> List[ContinuousQuery]:
        """Tear a whole group off this manager for live migration.

        The representative is deregistered from the SPE and the group
        leaves the grouping optimizer intact; the member queries are
        returned in group order so the receiving manager can re-accept
        them and reproduce the merge.
        """
        members = self.grouping.extract_group(group_id)
        registered = self._registered.pop(group_id, None)
        if registered is not None:
            self.spe.deregister(registered)
        return members

    # -- introspection -------------------------------------------------------------

    @property
    def groups(self) -> List[QueryGroup]:
        return self.grouping.groups

    def benefit_ratio(self) -> float:
        return self.grouping.benefit_ratio()

    def _result_stream_of(self, group: QueryGroup) -> str:
        if self.namespace:
            return f"{self.namespace}:{group.group_id}:results"
        return f"{group.group_id}:results"

    def engine_name_of(self, group_id: str) -> Optional[str]:
        """The SPE-local name the group's representative runs under."""
        return self._registered.get(group_id)

    def _sync_spe(self, group: QueryGroup, result_stream: str) -> None:
        """(Re-)register the group's representative on the SPE.

        The SPE sees a *modification*: the old representative is
        deregistered and the new one registered under a versioned name,
        keeping the stable result stream name.
        """
        old = self._registered.get(group.group_id)
        if old is not None:
            self.spe.deregister(old)
        engine_name = f"{group.group_id}:v{len(group.members)}"
        self.spe.register(
            group.representative.canonical(self.catalog),
            name=engine_name,
            result_stream=result_stream,
        )
        self._registered[group.group_id] = engine_name
