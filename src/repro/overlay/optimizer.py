"""Adaptive reorganisation of dissemination trees.

Section 3.2: *"The overlay network optimizer periodically monitors the
status of the network and performs the reorganization of the overlay
network if necessary. [...] By using a configurable cost function
defined on these parameters, it estimates whether a local
reorganization of the overlay trees is beneficial."* (refs [18, 19]).

The implementation here follows the cost-based local-transformation
approach of those references:

* The optimizer is given the current :class:`DisseminationTree`, the
  underlying :class:`Topology` (which physical links exist and their
  delays) and a traffic matrix of ``(source, sink, rate)`` demands.
* The **cost function is configurable**: it maps per-link
  ``(link_weight, flow, node_load)`` observations to a scalar; the
  default is delay-weighted traffic.
* Each round performs *local* transformations: for every tree edge it
  considers replacing it by a nearby topology edge that reconnects the
  two components more cheaply, accepting the best improving swap
  (hill-climbing), subject to a node degree cap (server capability).

Incremental maintenance
-----------------------
:class:`IncrementalOverlay` keeps a spanning tree *minimum* across
churn — node join, node leave, link re-weight — by local repair
instead of a global MST recompute per event:

* **join**: attach via the cheapest new link (the cut ``{node} | rest``
  makes it mandatory), then apply each remaining link as a classic
  edge-insertion improvement — swap it against the max-weight edge on
  the tree cycle it closes when strictly cheaper.
* **leave**: drop the node's tree edges; the surviving forest edges
  remain in some MST of the reduced graph (each was the minimum edge
  across its tree cut, and removing the node only shrinks that cut),
  so reconnection is a Kruskal run over the *cut-edge candidates* —
  topology edges incident to the smaller orphaned fragments, taken
  from the cached per-node neighbour candidates — contracted onto the
  fragments.
* **re-weight**: a tree edge that got heavier is re-auctioned against
  the minimum candidate crossing its cut; a non-tree edge that got
  cheaper is an edge-insertion improvement; the other two directions
  keep the tree minimal as-is.

Each repair is verified (edge count, connectivity of the touched
fragments); when an invariant fails — e.g. the candidate cache cannot
reconnect the fragments because the topology itself lost connectivity
— the maintainer falls back to a full
:meth:`~repro.overlay.topology.Topology.minimum_spanning_tree_edges`
recompute and counts it in :attr:`IncrementalOverlay.full_rebuilds`.
The weight-equality property suite
(``tests/overlay/test_incremental_repair.py``) holds the maintained
tree's total weight equal to a from-scratch MST after every event of
random churn sequences.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.overlay.topology import Edge, NodeId, Topology, edge_key
from repro.overlay.tree import DisseminationTree, TreeError

#: One traffic demand: ``rate`` units/second flowing from source to sink.
Demand = Tuple[NodeId, NodeId, float]

#: Cost function signature: (link_weight, flow_on_link) -> cost.
CostFunction = Callable[[float, float], float]


def weighted_traffic_cost(weight: float, flow: float) -> float:
    """Default cost function: link delay x carried traffic."""
    return weight * flow


def hop_count_cost(weight: float, flow: float) -> float:
    """Alternative cost function: every link hop costs its traffic."""
    return flow


@dataclass
class OptimizationReport:
    """Outcome of one :meth:`OverlayOptimizer.optimize` call."""

    rounds: int
    swaps: int
    initial_cost: float
    final_cost: float

    @property
    def improvement(self) -> float:
        """Fraction of cost removed (0 when there was nothing to improve)."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


class OverlayOptimizer:
    """Cost-based local reorganisation of a dissemination tree.

    Parameters
    ----------
    topology:
        The physical overlay graph; only its edges may appear in trees.
    cost_function:
        Per-link cost model, default delay x traffic.
    max_degree:
        Cap on tree degree per node, modelling heterogeneous server
        capability ("different capabilities due to their different
        hardware and software configurations"). ``None`` disables it.
    """

    def __init__(
        self,
        topology: Topology,
        cost_function: CostFunction = weighted_traffic_cost,
        max_degree: Optional[int] = None,
    ) -> None:
        self._topology = topology
        self._cost_function = cost_function
        self._max_degree = max_degree

    # -- cost evaluation ---------------------------------------------------------

    def link_flows(
        self, tree: DisseminationTree, demands: Sequence[Demand]
    ) -> Dict[Edge, float]:
        """Aggregate per-link flow induced by routing demands on the tree."""
        flows: Dict[Edge, float] = {}
        for source, sink, rate in demands:
            if rate <= 0 or source == sink:
                continue
            for edge in tree.path_edges(source, sink):
                flows[edge] = flows.get(edge, 0.0) + rate
        return flows

    def tree_cost(self, tree: DisseminationTree, demands: Sequence[Demand]) -> float:
        """Total cost of the tree under the configured cost function.

        Every tree link contributes (even with zero flow, the cost
        function decides whether idle links cost anything).
        """
        flows = self.link_flows(tree, demands)
        total = 0.0
        for edge in tree.edges:
            u, v = edge
            total += self._cost_function(tree.weight(u, v), flows.get(edge, 0.0))
        return total

    # -- local reorganisation --------------------------------------------------------

    def _candidate_swaps(
        self, tree: DisseminationTree, edge: Edge
    ) -> List[Tuple[Edge, float]]:
        """Topology edges that could replace ``edge`` in the tree."""
        u, v = edge
        side_v = tree.component_via(u, v)
        candidates: List[Tuple[Edge, float]] = []
        for cand in self._topology.edges:
            a, b = cand
            if cand == edge_key(u, v):
                continue
            crosses = (a in side_v) != (b in side_v)
            if not crosses:
                continue
            if self._max_degree is not None:
                if tree.degree(a) >= self._max_degree or tree.degree(b) >= self._max_degree:
                    continue
            candidates.append((cand, self._topology.weights[cand]))
        return candidates

    def optimize(
        self,
        tree: DisseminationTree,
        demands: Sequence[Demand],
        max_rounds: int = 10,
    ) -> Tuple[DisseminationTree, OptimizationReport]:
        """Hill-climb edge swaps until no local move improves the cost.

        Returns the improved tree and an :class:`OptimizationReport`.
        The input tree is never mutated.
        """
        current = tree
        initial_cost = self.tree_cost(current, demands)
        current_cost = initial_cost
        swaps = 0
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            best_gain = 0.0
            best_swap: Optional[Tuple[Edge, Edge, float]] = None
            for edge in current.edges:
                for cand, cand_weight in self._candidate_swaps(current, edge):
                    try:
                        trial = current.with_edge_swap(edge, cand, cand_weight)
                    except TreeError:
                        continue
                    trial_cost = self.tree_cost(trial, demands)
                    gain = current_cost - trial_cost
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_swap = (edge, cand, cand_weight)
            if best_swap is None:
                break
            removed, added, added_weight = best_swap
            current = current.with_edge_swap(removed, added, added_weight)
            current_cost -= best_gain
            swaps += 1
        final_cost = self.tree_cost(current, demands)
        return current, OptimizationReport(rounds, swaps, initial_cost, final_cost)


class IncrementalOverlay:
    """A minimum spanning tree maintained incrementally across churn.

    Owns a mutable view of the overlay: the :class:`Topology` (updated
    in place by the churn methods) plus the current spanning tree kept
    as adjacency/weight maps.  Each churn event repairs the tree
    locally; :attr:`local_repairs` and :attr:`full_rebuilds` count how
    often the local path sufficed versus the fallback fired.

    The maintained tree is always an exact MST of the current topology
    (the classic online-MST edge rules; see the module docstring), so
    consumers can swap a full recompute for event-driven repair without
    a quality loss.
    """

    def __init__(
        self, topology: Topology, tree: Optional[DisseminationTree] = None
    ) -> None:
        self._topology = topology
        if tree is None:
            tree = DisseminationTree.minimum_spanning(topology)
        self._adjacency: Dict[NodeId, Set[NodeId]] = {
            node: set(tree.neighbors(node)) for node in tree.nodes
        }
        self._weights: Dict[Edge, float] = {
            edge: tree.weight(*edge) for edge in tree.edges
        }
        #: node -> incident (weight, neighbour) candidates, sorted;
        #: rebuilt lazily per node after churn touches it.  These are
        #: the "cached neighbour candidates" repairs scan instead of
        #: the global edge list.
        self._candidates: Dict[NodeId, Tuple[Tuple[float, NodeId], ...]] = {}
        self._cached_tree: Optional[DisseminationTree] = tree
        self.local_repairs = 0
        self.full_rebuilds = 0

    # -- views ------------------------------------------------------------------

    @property
    def topology(self) -> Topology:
        return self._topology

    @property
    def tree(self) -> DisseminationTree:
        """The current spanning tree, materialised lazily."""
        if self._cached_tree is None:
            self._cached_tree = DisseminationTree._from_parts(
                {node: set(nbrs) for node, nbrs in self._adjacency.items()},
                dict(self._weights),
            )
        return self._cached_tree

    def total_weight(self) -> float:
        return sum(self._weights.values())

    @property
    def tree_edges(self) -> List[Edge]:
        return sorted(self._weights)

    # -- candidate cache --------------------------------------------------------

    def _node_candidates(self, node: NodeId) -> Tuple[Tuple[float, NodeId], ...]:
        cached = self._candidates.get(node)
        if cached is None:
            weights = self._topology.weights
            cached = tuple(
                sorted(
                    (weights[edge_key(node, other)], other)
                    for other in self._topology.neighbors(node)
                )
            )
            self._candidates[node] = cached
        return cached

    def _invalidate_candidates(self, nodes: Iterable[NodeId]) -> None:
        for node in nodes:
            self._candidates.pop(node, None)

    # -- tree surgery -----------------------------------------------------------

    def _add_tree_edge(self, u: NodeId, v: NodeId, weight: float) -> None:
        self._adjacency.setdefault(u, set()).add(v)
        self._adjacency.setdefault(v, set()).add(u)
        self._weights[edge_key(u, v)] = weight
        self._cached_tree = None

    def _drop_tree_edge(self, u: NodeId, v: NodeId) -> None:
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)
        self._weights.pop(edge_key(u, v), None)
        self._cached_tree = None

    def _tree_component(
        self, start: NodeId, without: Optional[Edge] = None
    ) -> Set[NodeId]:
        """Nodes reachable from ``start`` on tree edges, optionally
        treating ``without`` as cut."""
        seen = {start}
        frontier = [start]
        adjacency = self._adjacency
        while frontier:
            here = frontier.pop()
            for other in adjacency[here]:
                if without is not None and edge_key(here, other) == without:
                    continue
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return seen

    def _max_path_edge(self, source: NodeId, target: NodeId) -> Tuple[Edge, float]:
        """The heaviest tree edge on the unique path source -> target."""
        parent: Dict[NodeId, NodeId] = {source: source}
        frontier = [source]
        adjacency = self._adjacency
        while frontier and target not in parent:
            next_frontier: List[NodeId] = []
            for here in frontier:
                for other in adjacency[here]:
                    if other not in parent:
                        parent[other] = here
                        next_frontier.append(other)
            frontier = next_frontier
        if target not in parent:
            raise TreeError(f"no tree path from {source} to {target}")
        weights = self._weights
        best_edge: Optional[Edge] = None
        best_weight = -math.inf
        here = target
        while here != source:
            up = parent[here]
            edge = edge_key(here, up)
            weight = weights[edge]
            if weight > best_weight:
                best_weight = weight
                best_edge = edge
            here = up
        assert best_edge is not None
        return best_edge, best_weight

    def _insert_improvement(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Classic edge-insertion rule: swap (u, v) against the heaviest
        edge on the tree cycle it closes when strictly cheaper."""
        edge, max_weight = self._max_path_edge(u, v)
        if weight < max_weight:
            self._drop_tree_edge(*edge)
            self._add_tree_edge(u, v, weight)

    def _full_rebuild(self) -> None:
        edges = self._topology.minimum_spanning_tree_edges()
        weights = self._topology.weights
        self._adjacency = {node: set() for node in self._topology.nodes}
        self._weights = {}
        for u, v in edges:
            self._adjacency[u].add(v)
            self._adjacency[v].add(u)
            self._weights[edge_key(u, v)] = weights[edge_key(u, v)]
        self._cached_tree = None
        self.full_rebuilds += 1

    def _verify_or_rebuild(self) -> None:
        """Repair invariant: a spanning tree has exactly n - 1 edges.

        (Connectivity follows when every surgery step reconnects what
        it cuts; the count check catches a violated assumption cheaply.)
        """
        if len(self._weights) != len(self._topology) - 1:
            self._full_rebuild()

    # -- churn events -----------------------------------------------------------

    def join(self, node: NodeId, links: Mapping[NodeId, float]) -> None:
        """A node joins with physical ``links`` (neighbour -> weight).

        The cheapest link is mandatory by the cut property; every other
        link is applied as an edge-insertion improvement, so the result
        is the exact MST of the grown topology.
        """
        if node in self._adjacency:
            raise TreeError(f"node {node} already in the overlay")
        if not links:
            raise TreeError(f"node {node} joined without links")
        for other in links:
            if other not in self._adjacency:
                raise TreeError(f"join link to unknown node {other}")
        self._topology.add_node(node)
        ordered = sorted(
            (weight, other) for other, weight in links.items()
        )
        for weight, other in ordered:
            self._topology.add_edge(node, other, weight)
        self._invalidate_candidates([node, *links])
        best_weight, best_other = ordered[0]
        self._adjacency[node] = set()
        self._add_tree_edge(node, best_other, best_weight)
        for weight, other in ordered[1:]:
            self._insert_improvement(node, other, weight)
        self.local_repairs += 1
        self._verify_or_rebuild()

    def leave(self, node: NodeId) -> None:
        """A node leaves; reconnect its orphaned fragments cheaply.

        The surviving forest stays inside some MST of the reduced
        graph, so running Kruskal over the crossing candidates of the
        non-largest fragments (from the cached neighbour candidates)
        completes it to the exact MST.  Falls back to a full recompute
        when the candidates cannot reconnect every fragment.
        """
        if node not in self._adjacency:
            raise TreeError(f"unknown node {node}")
        if len(self._adjacency) == 1:
            raise TreeError("cannot remove the last overlay node")
        tree_neighbors = sorted(self._adjacency[node])
        physical = sorted(self._topology.neighbors(node))
        self._topology.remove_node(node)
        self._invalidate_candidates([node, *physical])
        for other in tree_neighbors:
            self._drop_tree_edge(node, other)
        del self._adjacency[node]
        self._cached_tree = None
        if len(tree_neighbors) > 1:
            self._reconnect_fragments(tree_neighbors)
        self.local_repairs += 1
        self._verify_or_rebuild()

    def _reconnect_fragments(self, seeds: List[NodeId]) -> None:
        """Kruskal over cut-edge candidates of the orphaned fragments."""
        fragments: List[Set[NodeId]] = []
        assigned: Dict[NodeId, int] = {}
        for seed in seeds:
            if seed in assigned:
                continue
            fragment = self._tree_component(seed)
            index = len(fragments)
            fragments.append(fragment)
            for member in fragment:
                assigned[member] = index
        if len(fragments) == 1:
            return
        # Scan candidates of every fragment but the largest: an edge
        # crossing two fragments is incident to a non-largest one.
        largest = max(range(len(fragments)), key=lambda i: len(fragments[i]))
        crossing: List[Tuple[float, NodeId, NodeId]] = []
        for index, fragment in enumerate(fragments):
            if index == largest:
                continue
            for member in sorted(fragment):
                for weight, other in self._node_candidates(member):
                    if assigned[other] != index:
                        crossing.append((weight, member, other))
        crossing.sort()
        # Union-find over fragment ids.
        parent = list(range(len(fragments)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        merges_needed = len(fragments) - 1
        for weight, u, v in crossing:
            ru, rv = find(assigned[u]), find(assigned[v])
            if ru == rv:
                continue
            parent[ru] = rv
            self._add_tree_edge(u, v, weight)
            merges_needed -= 1
            if merges_needed == 0:
                return
        # The candidates could not reconnect every fragment: invariant
        # failed (the fall back recomputes — and raises TopologyError
        # when the topology itself is partitioned).
        self._full_rebuild()

    def reweight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """A physical link changed cost; re-audit the affected cut."""
        key = edge_key(u, v)
        old = self._topology.weight(u, v)
        self._topology.set_weight(u, v, weight)
        self._invalidate_candidates([u, v])
        if key in self._weights:
            self._weights[key] = weight
            self._cached_tree = None
            if weight > old:
                # The heavier tree edge must win its cut again: scan
                # u's side for the cheapest candidate crossing the cut
                # and swap when one strictly beats the new weight.
                inside = self._tree_component(u, without=key)
                best: Optional[Tuple[float, NodeId, NodeId]] = None
                for member in sorted(inside):
                    for cand_weight, other in self._node_candidates(member):
                        if other not in inside and (
                            best is None or cand_weight < best[0]
                        ):
                            best = (cand_weight, member, other)
                if best is not None and best[0] < weight:
                    self._drop_tree_edge(u, v)
                    self._add_tree_edge(best[1], best[2], best[0])
        elif weight < old:
            self._insert_improvement(u, v, weight)
        self.local_repairs += 1
        self._verify_or_rebuild()
