"""Adaptive reorganisation of dissemination trees.

Section 3.2: *"The overlay network optimizer periodically monitors the
status of the network and performs the reorganization of the overlay
network if necessary. [...] By using a configurable cost function
defined on these parameters, it estimates whether a local
reorganization of the overlay trees is beneficial."* (refs [18, 19]).

The implementation here follows the cost-based local-transformation
approach of those references:

* The optimizer is given the current :class:`DisseminationTree`, the
  underlying :class:`Topology` (which physical links exist and their
  delays) and a traffic matrix of ``(source, sink, rate)`` demands.
* The **cost function is configurable**: it maps per-link
  ``(link_weight, flow, node_load)`` observations to a scalar; the
  default is delay-weighted traffic.
* Each round performs *local* transformations: for every tree edge it
  considers replacing it by a nearby topology edge that reconnects the
  two components more cheaply, accepting the best improving swap
  (hill-climbing), subject to a node degree cap (server capability).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.overlay.topology import Edge, NodeId, Topology, edge_key
from repro.overlay.tree import DisseminationTree, TreeError

#: One traffic demand: ``rate`` units/second flowing from source to sink.
Demand = Tuple[NodeId, NodeId, float]

#: Cost function signature: (link_weight, flow_on_link) -> cost.
CostFunction = Callable[[float, float], float]


def weighted_traffic_cost(weight: float, flow: float) -> float:
    """Default cost function: link delay x carried traffic."""
    return weight * flow


def hop_count_cost(weight: float, flow: float) -> float:
    """Alternative cost function: every link hop costs its traffic."""
    return flow


@dataclass
class OptimizationReport:
    """Outcome of one :meth:`OverlayOptimizer.optimize` call."""

    rounds: int
    swaps: int
    initial_cost: float
    final_cost: float

    @property
    def improvement(self) -> float:
        """Fraction of cost removed (0 when there was nothing to improve)."""
        if self.initial_cost == 0:
            return 0.0
        return 1.0 - self.final_cost / self.initial_cost


class OverlayOptimizer:
    """Cost-based local reorganisation of a dissemination tree.

    Parameters
    ----------
    topology:
        The physical overlay graph; only its edges may appear in trees.
    cost_function:
        Per-link cost model, default delay x traffic.
    max_degree:
        Cap on tree degree per node, modelling heterogeneous server
        capability ("different capabilities due to their different
        hardware and software configurations"). ``None`` disables it.
    """

    def __init__(
        self,
        topology: Topology,
        cost_function: CostFunction = weighted_traffic_cost,
        max_degree: Optional[int] = None,
    ) -> None:
        self._topology = topology
        self._cost_function = cost_function
        self._max_degree = max_degree

    # -- cost evaluation ---------------------------------------------------------

    def link_flows(
        self, tree: DisseminationTree, demands: Sequence[Demand]
    ) -> Dict[Edge, float]:
        """Aggregate per-link flow induced by routing demands on the tree."""
        flows: Dict[Edge, float] = {}
        for source, sink, rate in demands:
            if rate <= 0 or source == sink:
                continue
            for edge in tree.path_edges(source, sink):
                flows[edge] = flows.get(edge, 0.0) + rate
        return flows

    def tree_cost(self, tree: DisseminationTree, demands: Sequence[Demand]) -> float:
        """Total cost of the tree under the configured cost function.

        Every tree link contributes (even with zero flow, the cost
        function decides whether idle links cost anything).
        """
        flows = self.link_flows(tree, demands)
        total = 0.0
        for edge in tree.edges:
            u, v = edge
            total += self._cost_function(tree.weight(u, v), flows.get(edge, 0.0))
        return total

    # -- local reorganisation --------------------------------------------------------

    def _candidate_swaps(
        self, tree: DisseminationTree, edge: Edge
    ) -> List[Tuple[Edge, float]]:
        """Topology edges that could replace ``edge`` in the tree."""
        u, v = edge
        side_v = tree.component_via(u, v)
        candidates: List[Tuple[Edge, float]] = []
        for cand in self._topology.edges:
            a, b = cand
            if cand == edge_key(u, v):
                continue
            crosses = (a in side_v) != (b in side_v)
            if not crosses:
                continue
            if self._max_degree is not None:
                if tree.degree(a) >= self._max_degree or tree.degree(b) >= self._max_degree:
                    continue
            candidates.append((cand, self._topology.weights[cand]))
        return candidates

    def optimize(
        self,
        tree: DisseminationTree,
        demands: Sequence[Demand],
        max_rounds: int = 10,
    ) -> Tuple[DisseminationTree, OptimizationReport]:
        """Hill-climb edge swaps until no local move improves the cost.

        Returns the improved tree and an :class:`OptimizationReport`.
        The input tree is never mutated.
        """
        current = tree
        initial_cost = self.tree_cost(current, demands)
        current_cost = initial_cost
        swaps = 0
        rounds = 0
        for rounds in range(1, max_rounds + 1):
            best_gain = 0.0
            best_swap: Optional[Tuple[Edge, Edge, float]] = None
            for edge in current.edges:
                for cand, cand_weight in self._candidate_swaps(current, edge):
                    try:
                        trial = current.with_edge_swap(edge, cand, cand_weight)
                    except TreeError:
                        continue
                    trial_cost = self.tree_cost(trial, demands)
                    gain = current_cost - trial_cost
                    if gain > best_gain + 1e-12:
                        best_gain = gain
                        best_swap = (edge, cand, cand_weight)
            if best_swap is None:
                break
            removed, added, added_weight = best_swap
            current = current.with_edge_swap(removed, added, added_weight)
            current_cost -= best_gain
            swaps += 1
        final_cost = self.tree_cost(current, demands)
        return current, OptimizationReport(rounds, swaps, initial_cost, final_cost)
