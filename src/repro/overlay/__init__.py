"""Overlay network substrate.

COSMOS organises brokers and processors into overlay dissemination
trees over a wide-area topology (section 3.2).  This package provides:

* :mod:`repro.overlay.topology` -- random wide-area topologies in the
  style of the BRITE generator used by the paper (Barabási–Albert
  power-law and Waxman models) plus shortest paths.
* :mod:`repro.overlay.tree` -- dissemination trees (minimum spanning
  tree or shortest-path tree) with path/subtree queries.
* :mod:`repro.overlay.metrics` -- per-link traffic accounting used to
  compute communication cost.
* :mod:`repro.overlay.optimizer` -- the adaptive local tree
  reorganisation of refs [18, 19] with a configurable cost function,
  plus the incremental spanning-tree maintainer repairing MSTs
  locally across node join/leave/link-re-weight churn.
"""

from __future__ import annotations

from repro.overlay.metrics import LinkStats
from repro.overlay.optimizer import (
    IncrementalOverlay,
    OverlayOptimizer,
    weighted_traffic_cost,
)
from repro.overlay.topology import Topology, barabasi_albert, waxman
from repro.overlay.tree import DisseminationTree

__all__ = [
    "DisseminationTree",
    "IncrementalOverlay",
    "LinkStats",
    "OverlayOptimizer",
    "Topology",
    "barabasi_albert",
    "waxman",
    "weighted_traffic_cost",
]
