"""Random wide-area overlay topologies.

The paper's evaluation generates a 1000-node power-law topology with the
BRITE generator.  BRITE's power-law mode implements Barabási–Albert
preferential attachment; :func:`barabasi_albert` reproduces it (nodes
are placed in a plane, links are weighted by Euclidean distance, which
models link delay).  :func:`waxman` implements BRITE's other classic
model as an alternative.

Everything is seeded through an explicit :class:`random.Random` so
experiments are reproducible.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

NodeId = int
Edge = Tuple[NodeId, NodeId]


class TopologyError(Exception):
    """Raised for invalid topology operations (unknown nodes, etc.)."""


def edge_key(u: NodeId, v: NodeId) -> Edge:
    """Canonical undirected edge key."""
    return (u, v) if u <= v else (v, u)


@dataclass
class Topology:
    """An undirected weighted graph of overlay nodes.

    ``positions`` maps each node to plane coordinates (used by the
    generators to derive distance-based link weights); ``weights`` maps
    canonical edges to link costs (delay).
    """

    positions: Dict[NodeId, Tuple[float, float]] = field(default_factory=dict)
    weights: Dict[Edge, float] = field(default_factory=dict)
    _adjacency: Dict[NodeId, Set[NodeId]] = field(default_factory=dict, repr=False)

    # -- construction ---------------------------------------------------------

    def add_node(
        self, node: NodeId, position: Optional[Tuple[float, float]] = None
    ) -> None:
        self._adjacency.setdefault(node, set())
        if position is not None:
            self.positions[node] = position

    def add_edge(self, u: NodeId, v: NodeId, weight: Optional[float] = None) -> None:
        if u == v:
            raise TopologyError(f"self-loop on node {u}")
        self.add_node(u)
        self.add_node(v)
        if weight is None:
            weight = self.distance(u, v)
        self.weights[edge_key(u, v)] = float(weight)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_node(self, node: NodeId) -> None:
        """Remove a node and every edge incident to it (churn: leave)."""
        try:
            neighbors = self._adjacency.pop(node)
        except KeyError:
            raise TopologyError(f"unknown node {node}") from None
        for other in neighbors:
            self._adjacency[other].discard(node)
            self.weights.pop(edge_key(node, other), None)
        self.positions.pop(node, None)

    def set_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Update the cost of an existing edge (churn: link re-weight)."""
        key = edge_key(u, v)
        if key not in self.weights:
            raise TopologyError(f"no edge between {u} and {v}")
        self.weights[key] = float(weight)

    # -- queries ------------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        return sorted(self._adjacency)

    @property
    def edges(self) -> List[Edge]:
        return sorted(self.weights)

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        try:
            return set(self._adjacency[node])
        except KeyError:
            raise TopologyError(f"unknown node {node}") from None

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return edge_key(u, v) in self.weights

    def weight(self, u: NodeId, v: NodeId) -> float:
        try:
            return self.weights[edge_key(u, v)]
        except KeyError:
            raise TopologyError(f"no edge between {u} and {v}") from None

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Euclidean distance between node positions (1.0 if unknown)."""
        if u not in self.positions or v not in self.positions:
            return 1.0
        (x1, y1), (x2, y2) = self.positions[u], self.positions[v]
        return math.hypot(x1 - x2, y1 - y2)

    def __len__(self) -> int:
        return len(self._adjacency)

    def is_connected(self) -> bool:
        nodes = self.nodes
        if not nodes:
            return True
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            node = frontier.pop()
            for other in self._adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(nodes)

    # -- algorithms -------------------------------------------------------------------

    def shortest_paths(self, source: NodeId) -> Dict[NodeId, float]:
        """Dijkstra distances from ``source`` to every reachable node."""
        if source not in self._adjacency:
            raise TopologyError(f"unknown node {source}")
        dist: Dict[NodeId, float] = {source: 0.0}
        heap: List[Tuple[float, NodeId]] = [(0.0, source)]
        done: Set[NodeId] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for other in self._adjacency[node]:
                nd = d + self.weight(node, other)
                if nd < dist.get(other, math.inf):
                    dist[other] = nd
                    heapq.heappush(heap, (nd, other))
        return dist

    def shortest_path_tree(self, root: NodeId) -> Dict[NodeId, NodeId]:
        """Parent pointers of the Dijkstra shortest-path tree from ``root``."""
        parent: Dict[NodeId, NodeId] = {}
        dist: Dict[NodeId, float] = {root: 0.0}
        heap: List[Tuple[float, NodeId]] = [(0.0, root)]
        done: Set[NodeId] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            done.add(node)
            for other in self._adjacency[node]:
                nd = d + self.weight(node, other)
                if nd < dist.get(other, math.inf):
                    dist[other] = nd
                    parent[other] = node
                    heapq.heappush(heap, (nd, other))
        return parent

    def minimum_spanning_tree_edges(self) -> List[Edge]:
        """Kruskal MST over the whole topology (must be connected)."""
        parent: Dict[NodeId, NodeId] = {node: node for node in self._adjacency}

        def find(x: NodeId) -> NodeId:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        mst: List[Edge] = []
        for edge in sorted(self.weights, key=lambda e: (self.weights[e], e)):
            u, v = edge
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
                mst.append(edge)
        if len(mst) != len(self._adjacency) - 1:
            raise TopologyError("topology is not connected; MST is incomplete")
        return mst


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------


def _scatter(n: int, rng: random.Random, extent: float) -> List[Tuple[float, float]]:
    return [(rng.uniform(0, extent), rng.uniform(0, extent)) for __ in range(n)]


def barabasi_albert(
    n: int,
    m: int = 2,
    rng: Optional[random.Random] = None,
    extent: float = 1000.0,
) -> Topology:
    """A BRITE-style power-law topology via preferential attachment.

    Starts from a clique of ``m + 1`` nodes; every subsequent node
    attaches to ``m`` distinct existing nodes chosen with probability
    proportional to their degree.  Link weights are Euclidean distances
    between random plane positions (delay proxy).
    """
    if m < 1:
        raise TopologyError(f"attachment count m must be >= 1, got {m}")
    if n < m + 1:
        raise TopologyError(f"need at least m+1={m + 1} nodes, got {n}")
    rng = rng or random.Random(0)
    topo = Topology()
    points = _scatter(n, rng, extent)
    for node, pos in enumerate(points):
        topo.add_node(node, pos)
    # repeated-nodes list: each endpoint appended once per incident edge,
    # giving degree-proportional sampling.
    attachment_pool: List[NodeId] = []
    for u in range(m + 1):
        for v in range(u + 1, m + 1):
            topo.add_edge(u, v)
            attachment_pool.extend((u, v))
    for node in range(m + 1, n):
        targets: Set[NodeId] = set()
        while len(targets) < m:
            pick = rng.choice(attachment_pool)
            targets.add(pick)
        for target in sorted(targets):
            topo.add_edge(node, target)
            attachment_pool.extend((node, target))
    return topo


def waxman(
    n: int,
    alpha: float = 0.15,
    beta: float = 0.6,
    rng: Optional[random.Random] = None,
    extent: float = 1000.0,
) -> Topology:
    """The Waxman random-graph model (BRITE's other classic mode).

    Nodes at random plane positions; an edge between u and v exists with
    probability ``alpha * exp(-d(u, v) / (beta * L))`` where ``L`` is the
    plane diagonal.  The graph is patched to connectivity by linking
    each stranded component to its nearest already-connected node.
    """
    rng = rng or random.Random(0)
    topo = Topology()
    points = _scatter(n, rng, extent)
    for node, pos in enumerate(points):
        topo.add_node(node, pos)
    diagonal = math.hypot(extent, extent)
    for u in range(n):
        for v in range(u + 1, n):
            p = alpha * math.exp(-topo.distance(u, v) / (beta * diagonal))
            if rng.random() < p:
                topo.add_edge(u, v)
    _patch_connectivity(topo)
    return topo


def _patch_connectivity(topo: Topology) -> None:
    """Connect stray components to the largest component's nearest node."""
    nodes = topo.nodes
    if not nodes:
        return
    remaining = set(nodes)
    components: List[Set[NodeId]] = []
    while remaining:
        start = next(iter(remaining))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for other in sorted(topo.neighbors(node)):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        components.append(seen)
        remaining -= seen
    components.sort(key=len, reverse=True)
    main = set(components[0])
    for component in components[1:]:
        best: Optional[Tuple[float, NodeId, NodeId]] = None
        for u in component:
            for v in main:
                d = topo.distance(u, v)
                if best is None or d < best[0]:
                    best = (d, u, v)
        assert best is not None
        topo.add_edge(best[1], best[2])
        main |= component
