"""Per-link traffic accounting.

Communication efficiency is the paper's headline objective, so every
layer that moves data records it here.  :class:`LinkStats` accumulates
message counts and byte volumes per overlay link and can report totals
either raw or weighted by link cost (delay), which is the
"communication cost" of the evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.overlay.topology import Edge, NodeId, edge_key


@dataclass
class LinkUsage:
    """Accumulated traffic on one overlay link."""

    messages: int = 0
    bytes: float = 0.0

    def add(self, count: int, size: float) -> None:
        self.messages += count
        self.bytes += size


class LinkStats:
    """Traffic accumulator keyed by canonical overlay edge.

    ``weights`` (optional) maps edges to link costs; when present,
    :meth:`weighted_cost` reports bytes x link-cost summed over links —
    the communication-cost metric the benefit ratio of Figure 4 is
    computed from.
    """

    def __init__(self, weights: Optional[Mapping[Edge, float]] = None) -> None:
        self._usage: Dict[Edge, LinkUsage] = {}
        # Canonicalize the keys: ``record``/``add_weight`` store under
        # edge_key, so a reversed (v, u) supplied here would otherwise
        # never be found by weighted_cost() and silently cost 1.0.
        self._weights = {
            edge_key(*edge): weight for edge, weight in (weights or {}).items()
        }

    def add_weight(self, edge: Edge, weight: float) -> None:
        """Register a link cost (kept if the edge already has one)."""
        self._weights.setdefault(edge_key(*edge), weight)

    def record(self, u: NodeId, v: NodeId, size: float, count: int = 1) -> None:
        """Record ``count`` messages totalling ``size`` bytes on link (u, v)."""
        usage = self._usage.setdefault(edge_key(u, v), LinkUsage())
        usage.add(count, size)

    def usage(self, u: NodeId, v: NodeId) -> LinkUsage:
        return self._usage.get(edge_key(u, v), LinkUsage())

    @property
    def links_used(self) -> int:
        return len(self._usage)

    def total_messages(self) -> int:
        return sum(usage.messages for usage in self._usage.values())

    def total_bytes(self) -> float:
        return sum(usage.bytes for usage in self._usage.values())

    def weighted_cost(self) -> float:
        """Sum over links of bytes x link cost (cost 1.0 when unknown)."""
        return sum(
            usage.bytes * self._weights.get(edge, 1.0)
            for edge, usage in self._usage.items()
        )

    def merge(self, other: "LinkStats") -> None:
        """Fold another accumulator into this one."""
        for edge, usage in other._usage.items():
            mine = self._usage.setdefault(edge, LinkUsage())
            mine.add(usage.messages, usage.bytes)
        for edge, weight in other._weights.items():
            self._weights.setdefault(edge_key(*edge), weight)

    def reset(self) -> None:
        self._usage.clear()

    def as_dict(self) -> Dict[Edge, Tuple[int, float]]:
        """Snapshot: edge -> (messages, bytes)."""
        return {
            edge: (usage.messages, usage.bytes)
            for edge, usage in self._usage.items()
        }
