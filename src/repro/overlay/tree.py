"""Overlay dissemination trees.

COSMOS organises the overlay nodes into dissemination trees (section
3.2): the paper's experiments build a minimum spanning tree over the
BRITE topology.  :class:`DisseminationTree` wraps a tree edge set with
the queries routing needs: neighbours, unique paths, the side of an
edge a node falls on, and subtree membership.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.overlay.topology import Edge, NodeId, Topology, TopologyError, edge_key


class TreeError(Exception):
    """Raised for non-tree edge sets or disconnected path queries."""


class DisseminationTree:
    """An undirected tree over overlay nodes with weighted edges.

    The tree is the routing substrate of the CBN: subscriptions and
    datagrams travel along its unique paths.  Construct via
    :meth:`minimum_spanning` or :meth:`shortest_path` from a
    :class:`~repro.overlay.topology.Topology`, or directly from an edge
    list.
    """

    def __init__(
        self,
        edges: Iterable[Edge],
        weights: Optional[Dict[Edge, float]] = None,
        nodes: Optional[Iterable[NodeId]] = None,
    ) -> None:
        self._adjacency: Dict[NodeId, Set[NodeId]] = {}
        self._weights: Dict[Edge, float] = {}
        for node in nodes or ():
            self._adjacency.setdefault(node, set())
        for u, v in edges:
            key = edge_key(u, v)
            self._adjacency.setdefault(u, set()).add(v)
            self._adjacency.setdefault(v, set()).add(u)
            self._weights[key] = (weights or {}).get(key, 1.0)
        self._check_tree()

    def _check_tree(self) -> None:
        n = len(self._adjacency)
        if n == 0:
            return
        if len(self._weights) != n - 1:
            raise TreeError(
                f"{n} nodes need {n - 1} tree edges, got {len(self._weights)}"
            )
        if not self._connected():
            raise TreeError("tree edges do not connect all nodes")

    def _connected(self) -> bool:
        nodes = list(self._adjacency)
        seen = {nodes[0]}
        frontier = [nodes[0]]
        while frontier:
            node = frontier.pop()
            for other in self._adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(nodes)

    # -- constructors -------------------------------------------------------------

    @classmethod
    def _from_parts(
        cls,
        adjacency: Dict[NodeId, Set[NodeId]],
        weights: Dict[Edge, float],
    ) -> "DisseminationTree":
        """Internal: wrap pre-validated tree parts without re-checking.

        Callers (the incremental overlay maintainer, :meth:`remove_node`)
        guarantee the structure is consistent; ``adjacency`` and
        ``weights`` are taken by reference and must not be mutated
        afterwards.  Skipping the O(n) connectivity re-validation is
        what makes lazy tree materialisation cheap at 10k nodes.
        """
        tree = cls.__new__(cls)
        tree._adjacency = adjacency
        tree._weights = weights
        return tree

    @classmethod
    def minimum_spanning(cls, topology: Topology) -> "DisseminationTree":
        """The MST dissemination tree the paper's experiments use."""
        edges = topology.minimum_spanning_tree_edges()
        weights = {edge: topology.weights[edge] for edge in edges}
        return cls(edges, weights, nodes=topology.nodes)

    @classmethod
    def shortest_path(cls, topology: Topology, root: NodeId) -> "DisseminationTree":
        """A shortest-path tree rooted at ``root`` (per-source trees)."""
        parent = topology.shortest_path_tree(root)
        if len(parent) != len(topology) - 1:
            raise TreeError(f"root {root} cannot reach every node")
        edges = [edge_key(child, par) for child, par in parent.items()]
        weights = {edge: topology.weights[edge] for edge in edges}
        return cls(edges, weights, nodes=topology.nodes)

    # -- queries ----------------------------------------------------------------------

    @property
    def nodes(self) -> List[NodeId]:
        return sorted(self._adjacency)

    @property
    def edges(self) -> List[Edge]:
        return sorted(self._weights)

    def neighbors(self, node: NodeId) -> Set[NodeId]:
        try:
            return set(self._adjacency[node])
        except KeyError:
            raise TreeError(f"unknown node {node}") from None

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))

    def weight(self, u: NodeId, v: NodeId) -> float:
        try:
            return self._weights[edge_key(u, v)]
        except KeyError:
            raise TreeError(f"no tree edge between {u} and {v}") from None

    def total_weight(self) -> float:
        return sum(self._weights.values())

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def _index(self) -> Tuple[Dict[NodeId, NodeId], Dict[NodeId, int]]:
        """Lazily built parent/depth maps from an arbitrary root.

        Path queries walk the two endpoints up to their lowest common
        ancestor, which makes repeated queries O(path length) instead of
        a full BFS per call.
        """
        cached = getattr(self, "_lca_cache", None)
        if cached is not None:
            return cached
        nodes = list(self._adjacency)
        parent: Dict[NodeId, NodeId] = {}
        depth: Dict[NodeId, int] = {}
        if nodes:
            root = nodes[0]
            parent[root] = root
            depth[root] = 0
            queue = deque([root])
            while queue:
                node = queue.popleft()
                for other in self._adjacency[node]:
                    if other not in parent:
                        parent[other] = node
                        depth[other] = depth[node] + 1
                        queue.append(other)
        self._lca_cache = (parent, depth)
        return self._lca_cache

    def path(self, source: NodeId, target: NodeId) -> List[NodeId]:
        """The unique tree path from ``source`` to ``target`` (inclusive)."""
        if source not in self._adjacency or target not in self._adjacency:
            raise TreeError(f"unknown node in path query {source}->{target}")
        if source == target:
            return [source]
        parent, depth = self._index()
        if source not in depth or target not in depth:
            raise TreeError(f"no path from {source} to {target}")
        up: List[NodeId] = []
        down: List[NodeId] = []
        a, b = source, target
        while depth[a] > depth[b]:
            up.append(a)
            a = parent[a]
        while depth[b] > depth[a]:
            down.append(b)
            b = parent[b]
        while a != b:
            up.append(a)
            down.append(b)
            a = parent[a]
            b = parent[b]
        down.reverse()
        return up + [a] + down

    def path_edges(self, source: NodeId, target: NodeId) -> List[Edge]:
        path = self.path(source, target)
        return [edge_key(a, b) for a, b in zip(path, path[1:])]

    def path_weight(self, source: NodeId, target: NodeId) -> float:
        return sum(self._weights[edge] for edge in self.path_edges(source, target))

    def next_hop(self, source: NodeId, target: NodeId) -> NodeId:
        """First node after ``source`` on the path to ``target``."""
        path = self.path(source, target)
        if len(path) < 2:
            raise TreeError(f"{source} and {target} are the same node")
        return path[1]

    def component_via(self, node: NodeId, neighbor: NodeId) -> Set[NodeId]:
        """All nodes reachable from ``node`` through ``neighbor``.

        This is "the side of edge (node, neighbor) that contains
        ``neighbor``" — the set of destinations a datagram forwarded on
        that edge can ultimately reach.
        """
        if neighbor not in self._adjacency.get(node, ()):
            raise TreeError(f"{neighbor} is not a tree neighbour of {node}")
        seen = {node, neighbor}
        frontier = [neighbor]
        while frontier:
            current = frontier.pop()
            for other in self._adjacency[current]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        seen.discard(node)
        return seen

    # -- mutation (used by the optimizer and fault tolerance) ---------------------------

    def with_edge_swap(
        self,
        removed: Edge,
        added: Edge,
        added_weight: float,
    ) -> "DisseminationTree":
        """A new tree with ``removed`` replaced by ``added``.

        Raises :class:`TreeError` when the result is not a tree (the
        added edge must reconnect the two components split by the
        removal).
        """
        removed = edge_key(*removed)
        if removed not in self._weights:
            raise TreeError(f"edge {removed} is not in the tree")
        edges = [e for e in self._weights if e != removed]
        edges.append(edge_key(*added))
        weights = {e: w for e, w in self._weights.items() if e != removed}
        weights[edge_key(*added)] = added_weight
        return DisseminationTree(edges, weights, nodes=self._adjacency)

    def remove_node(self, node: NodeId) -> Tuple[List[Set[NodeId]], "DisseminationTree"]:
        """Remove a failed node; return the orphaned components and the
        forest remainder packaged as adjacency fragments.

        Used by the data-layer fault-tolerance logic, which then re-links
        the fragments through surviving topology edges.
        """
        if node not in self._adjacency:
            raise TreeError(f"unknown node {node}")
        survivors = {n for n in self._adjacency if n != node}
        edges = [e for e in self._weights if node not in e]
        components: List[Set[NodeId]] = []
        remaining = set(survivors)
        adjacency: Dict[NodeId, Set[NodeId]] = {n: set() for n in survivors}
        for u, v in edges:
            adjacency[u].add(v)
            adjacency[v].add(u)
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for other in adjacency[current]:
                    if other not in seen:
                        seen.add(other)
                        frontier.append(other)
            components.append(seen)
            remaining -= seen
        forest = DisseminationTree._from_parts(
            adjacency, {e: w for e, w in self._weights.items() if node not in e}
        )
        return components, forest
