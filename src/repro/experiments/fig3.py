"""Figure 3: shared vs non-shared result stream delivery, measured.

Reconstructs the motivating example end to end on the exact overlay of
Figure 3: processor ``n1`` connected to broker ``n2``, users at ``n3``
and ``n4`` issuing the Table 1 queries q1 and q2.  Two full systems are
run on the same auction feed:

* **non-share** — merging disabled: q1 and q2 each run on the SPE and
  their result streams ``s1``/``s2`` travel separately, so the
  ``n1 - n2`` link carries the overlapping content twice (Figure 3(a));
* **share** — merging enabled: the representative q3 runs once, one
  stream ``s3`` crosses ``n1 - n2``, and the CBN splits it at ``n2``
  using the re-tightening profiles p1/p2 (Figure 3(b)).

Both systems must deliver *identical* per-user results; the measured
bytes on the shared link quantify the saving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cbn.datagram import Datagram
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem
from repro.workload.auction import (
    AuctionWorkload,
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
)

#: Node ids of the Figure 3 overlay.
N1, N2, N3, N4 = 1, 2, 3, 4


@dataclass
class Fig3Result:
    """Measured traffic of both delivery modes."""

    n_items: int
    q1_results: int
    q2_results: int
    results_identical: bool
    shared_link_bytes_nonshare: float
    shared_link_bytes_share: float
    total_bytes_nonshare: float
    total_bytes_share: float

    @property
    def shared_link_saving(self) -> float:
        """Fraction of n1-n2 traffic removed by sharing."""
        if self.shared_link_bytes_nonshare == 0:
            return 0.0
        return 1.0 - self.shared_link_bytes_share / self.shared_link_bytes_nonshare

    @property
    def total_saving(self) -> float:
        if self.total_bytes_nonshare == 0:
            return 0.0
        return 1.0 - self.total_bytes_share / self.total_bytes_nonshare


def _figure3_tree() -> DisseminationTree:
    edges = [(N1, N2), (N2, N3), (N2, N4)]
    weights = {edge: 1.0 for edge in edges}
    return DisseminationTree(edges, weights)


def _build_system(merging: bool) -> CosmosSystem:
    system = CosmosSystem(
        _figure3_tree(), processor_nodes=[N1], merging=merging
    )
    system.add_source(OPEN_AUCTION_SCHEMA, N1)
    system.add_source(CLOSED_AUCTION_SCHEMA, N1)
    return system


def run_fig3(n_items: int = 200, seed: int = 11) -> Fig3Result:
    """Run both delivery modes on one auction feed and compare."""
    feed = AuctionWorkload(random.Random(seed)).feed(n_items)

    def run(merging: bool) -> Tuple[CosmosSystem, List[Datagram], List[Datagram]]:
        system = _build_system(merging)
        h1 = system.submit(TABLE1_Q1, user_node=N3, name="q1")
        h2 = system.submit(TABLE1_Q2, user_node=N4, name="q2")
        system.replay(feed)
        return system, h1.results, h2.results

    nonshare_system, ns_q1, ns_q2 = run(merging=False)
    share_system, sh_q1, sh_q2 = run(merging=True)

    identical = _result_sets_equal(ns_q1, sh_q1) and _result_sets_equal(
        ns_q2, sh_q2
    )
    # Only result-stream traffic is compared; source delivery up to the
    # processor is identical in both systems (same node hosts the SPE).
    ns_link = nonshare_system.network.data_stats.usage(N1, N2).bytes
    sh_link = share_system.network.data_stats.usage(N1, N2).bytes
    return Fig3Result(
        n_items=n_items,
        q1_results=len(sh_q1),
        q2_results=len(sh_q2),
        results_identical=identical,
        shared_link_bytes_nonshare=ns_link,
        shared_link_bytes_share=sh_link,
        total_bytes_nonshare=nonshare_system.network.data_stats.total_bytes(),
        total_bytes_share=share_system.network.data_stats.total_bytes(),
    )


def _result_sets_equal(a: List[Datagram], b: List[Datagram]) -> bool:
    def key(d: Datagram) -> Tuple:
        return (d.timestamp, tuple(sorted(d.payload.items())))

    return sorted(map(key, a)) == sorted(map(key, b))
