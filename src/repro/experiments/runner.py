"""Text reporting and the ``python -m repro.experiments`` entry point."""

from __future__ import annotations

import sys
from typing import Iterable, List, Optional, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def fig4_report(result) -> str:
    """Figure 4(a) + 4(b) as two text tables."""
    counts = sorted({p.n_queries for p in result.points})
    skews = sorted({p.skew for p in result.points})

    def table(metric: str, title: str) -> str:
        headers = ["#Queries"] + [
            ("uniform" if s == 0 else f"zipf{s:g}") for s in skews
        ]
        rows = []
        for count in counts:
            row: List[object] = [count]
            for skew in skews:
                row.append(getattr(result.point(skew, count), metric))
            rows.append(row)
        return render_table(headers, rows, title)

    return (
        table("benefit_ratio", "Figure 4(a): Benefit Ratio")
        + "\n\n"
        + table("grouping_ratio", "Figure 4(b): Grouping Ratio")
    )


def fig3_report(result) -> str:
    rows = [
        ["n1-n2 link bytes", result.shared_link_bytes_nonshare, result.shared_link_bytes_share],
        ["total result bytes", result.total_bytes_nonshare, result.total_bytes_share],
    ]
    table = render_table(
        ["metric", "non-share", "share"],
        rows,
        "Figure 3: result stream delivery",
    )
    return (
        f"{table}\n"
        f"shared-link saving: {result.shared_link_saving:.1%}, "
        f"results identical: {result.results_identical}"
    )


def table1_report(result) -> str:
    lines = [
        "Table 1: representative query and split profiles",
        f"  q3 := {result.representative_cql}",
        f"  equivalent to paper's q3: {result.matches_paper_q3}",
        f"  q1 contained: {result.contains_q1}, q2 contained: {result.contains_q2}",
        f"  p1: P={list(result.p1_projection)} F=[{result.p1_filter}]",
        f"  p2: P={list(result.p2_projection)} F=[{result.p2_filter}]",
        f"  q1 results: direct={result.q1_direct} via split={result.q1_via_split}",
        f"  q2 results: direct={result.q2_direct} via split={result.q2_via_split}",
        f"  split reproduces direct execution: {result.split_reproduces_direct}",
    ]
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run every experiment at default scale and print the reports."""
    from repro.experiments.fig3 import run_fig3
    from repro.experiments.fig4 import Fig4Config, run_fig4
    from repro.experiments.table1 import run_table1

    args = list(argv if argv is not None else sys.argv[1:])
    print(table1_report(run_table1()))
    print()
    print(fig3_report(run_fig3()))
    print()
    config = Fig4Config.paper_scale() if "--full" in args else None
    print(fig4_report(run_fig4(config)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
