"""Figure 4: query grouping performance.

The paper's preliminary experiment (section 5): 63 SensorScope
streams; random queries (streams, window sizes and filter predicates
drawn uniformly or zipfian with skew 1.0 / 1.5 / 2.0); a BRITE-style
1000-node power-law topology with a minimum spanning dissemination
tree; results averaged over 20 repetitions with fresh random queries.

* **Figure 4(a), benefit ratio** — the percentage of communication
  cost removed by query merging relative to no merging, measured at
  checkpoints as queries accumulate (2000 .. 10000 in the paper).
* **Figure 4(b), grouping ratio** — #groups / #queries at the same
  checkpoints.

Communication cost follows the Figure 3 delivery model
(:class:`repro.system.delivery.DeliveryCostModel`): each member's
result unicast along the tree vs the representative multicast with CBN
re-tightening at branch points.

The full paper scale (10000 queries x 4 distributions x 20 repetitions)
takes tens of minutes in pure Python, so :class:`Fig4Config.scaled`
provides a faithful reduced sweep; pass ``Fig4Config.paper_scale()``
(or set the ``REPRO_FULL_SCALE`` environment variable for the bench) to
run the original parameters.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.cql.schema import Catalog
from repro.overlay.topology import NodeId, barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.system.delivery import DeliveryCostModel, GroupPlacement
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import sensorscope_catalog


@dataclass
class Fig4Config:
    """Sweep parameters (defaults: a scaled-down but faithful sweep)."""

    query_counts: Tuple[int, ...] = (500, 1000, 2000, 3000)
    skews: Tuple[float, ...] = (0.0, 1.0, 1.5, 2.0)
    repetitions: int = 3
    n_streams: int = 63
    topology_nodes: int = 1000
    topology_m: int = 2
    n_processors: int = 8
    join_fraction: float = 0.0
    seed: int = 7

    @staticmethod
    def paper_scale() -> "Fig4Config":
        """The original section 5 parameters."""
        return Fig4Config(
            query_counts=(2000, 4000, 6000, 8000, 10000),
            repetitions=20,
        )

    @staticmethod
    def smoke() -> "Fig4Config":
        """A seconds-long sweep for tests."""
        return Fig4Config(
            query_counts=(100, 200),
            skews=(0.0, 1.5),
            repetitions=2,
            topology_nodes=200,
        )


@dataclass
class Fig4Point:
    """One (distribution, #queries) cell, averaged over repetitions."""

    skew: float
    n_queries: int
    benefit_ratio: float
    grouping_ratio: float
    benefit_stdev: float = 0.0
    grouping_stdev: float = 0.0

    @property
    def label(self) -> str:
        return "uniform" if self.skew == 0 else f"zipf{self.skew:g}"


@dataclass
class Fig4Result:
    """All points of both subfigures."""

    config: Fig4Config
    points: List[Fig4Point]

    def series(self, skew: float) -> List[Fig4Point]:
        return sorted(
            (p for p in self.points if p.skew == skew),
            key=lambda p: p.n_queries,
        )

    def point(self, skew: float, n_queries: int) -> Fig4Point:
        for p in self.points:
            if p.skew == skew and p.n_queries == n_queries:
                return p
        raise KeyError((skew, n_queries))


def run_fig4(config: Optional[Fig4Config] = None) -> Fig4Result:
    """Run the Figure 4 sweep and return every point of both plots."""
    config = config or Fig4Config()
    points: List[Fig4Point] = []
    for skew in config.skews:
        samples: Dict[int, List[Tuple[float, float]]] = {
            n: [] for n in config.query_counts
        }
        for repetition in range(config.repetitions):
            run_seed = config.seed + 1000 * repetition + int(skew * 10)
            for count, (benefit, grouping) in _one_run(
                config, skew, run_seed
            ).items():
                samples[count].append((benefit, grouping))
        for count, values in samples.items():
            benefits = [v[0] for v in values]
            groupings = [v[1] for v in values]
            points.append(
                Fig4Point(
                    skew=skew,
                    n_queries=count,
                    benefit_ratio=statistics.fmean(benefits),
                    grouping_ratio=statistics.fmean(groupings),
                    benefit_stdev=(
                        statistics.stdev(benefits) if len(benefits) > 1 else 0.0
                    ),
                    grouping_stdev=(
                        statistics.stdev(groupings) if len(groupings) > 1 else 0.0
                    ),
                )
            )
    return Fig4Result(config, points)


def _one_run(
    config: Fig4Config, skew: float, seed: int
) -> Dict[int, Tuple[float, float]]:
    """One repetition: returns checkpoint -> (benefit, grouping) ratios."""
    rng = random.Random(seed)
    catalog = sensorscope_catalog(config.n_streams, rng=random.Random(seed + 1))
    topology = barabasi_albert(
        config.topology_nodes, config.topology_m, random.Random(seed + 2)
    )
    tree = DisseminationTree.minimum_spanning(topology)
    nodes = tree.nodes
    processor_nodes = rng.sample(nodes, config.n_processors)
    cost_model = CostModel()
    optimizers = [
        GroupingOptimizer(catalog, cost_model) for __ in processor_nodes
    ]
    #: query name -> (optimizer index, user node)
    placement_info: Dict[str, Tuple[int, NodeId]] = {}
    delivery = DeliveryCostModel(tree, catalog, cost_model)

    workload = QueryWorkload(
        catalog,
        WorkloadConfig(skew=skew, join_fraction=config.join_fraction, seed=seed + 3),
    )
    checkpoints: Dict[int, Tuple[float, float]] = {}
    produced = 0
    for target in sorted(config.query_counts):
        while produced < target:
            query = workload.next_query()
            produced += 1
            index = _affinity(query.stream_names, len(optimizers))
            optimizers[index].add(query)
            placement_info[query.name] = (index, rng.choice(nodes))
        checkpoints[target] = _measure(
            optimizers, processor_nodes, placement_info, delivery
        )
    return checkpoints


def _affinity(stream_names: Sequence[str], n: int) -> int:
    import hashlib

    key = ",".join(sorted(set(stream_names)))
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % n


def _measure(
    optimizers: Sequence[GroupingOptimizer],
    processor_nodes: Sequence[NodeId],
    placement_info: Dict[str, Tuple[int, NodeId]],
    delivery: DeliveryCostModel,
) -> Tuple[float, float]:
    placements: List[GroupPlacement] = []
    total_queries = 0
    total_groups = 0
    for index, optimizer in enumerate(optimizers):
        total_queries += optimizer.query_count
        total_groups += optimizer.group_count
        for group in optimizer.groups:
            member_nodes = {
                member.name: placement_info[member.name][1]
                for member in group.members
            }
            placements.append(
                GroupPlacement(group, processor_nodes[index], member_nodes)
            )
    benefit = delivery.benefit_ratio(placements)
    grouping = total_groups / total_queries if total_queries else 1.0
    return benefit, grouping
