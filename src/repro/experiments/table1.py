"""Table 1: the example queries, their representative, and the split.

Verifies, end to end, the paper's running example:

1. merging q1 and q2 composes a representative equivalent to the
   paper's hand-written q3 (mutual containment);
2. the re-tightening profiles p1/p2 have the shape printed in section 4
   (p1 keeps ``O.*`` under the 3-hour timestamp-difference constraint);
3. feeding an auction stream through the representative and splitting
   its result stream with p1/p2 reproduces *exactly* the results of
   running q1 and q2 directly on the SPE.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.cbn.datagram import Datagram
from repro.core.containment import contains
from repro.core.merging import merge_queries
from repro.core.profiles import result_profile
from repro.cql.parser import parse_query
from repro.cql.text import to_cql
from repro.spe.engine import StreamProcessingEngine
from repro.workload.auction import (
    AuctionWorkload,
    TABLE1_Q1,
    TABLE1_Q2,
    TABLE1_Q3,
    auction_catalog,
)


@dataclass
class Table1Result:
    """Outcome of the Table 1 verification."""

    representative_cql: str
    matches_paper_q3: bool
    contains_q1: bool
    contains_q2: bool
    p1_projection: Tuple[str, ...]
    p1_filter: str
    p2_projection: Tuple[str, ...]
    p2_filter: str
    q1_direct: int
    q1_via_split: int
    q2_direct: int
    q2_via_split: int
    split_reproduces_direct: bool


def run_table1(n_items: int = 300, seed: int = 3) -> Table1Result:
    catalog = auction_catalog()
    q1 = parse_query(TABLE1_Q1, name="q1")
    q2 = parse_query(TABLE1_Q2, name="q2")
    paper_q3 = parse_query(TABLE1_Q3, name="q3")

    rep = merge_queries(q1, q2, catalog, name="q3")
    matches = contains(rep, paper_q3, catalog) and contains(
        paper_q3, rep, catalog
    )
    p1 = result_profile(q1, rep, catalog, "s3", subscriber="q1")
    p2 = result_profile(q2, rep, catalog, "s3", subscriber="q2")

    # Direct execution of q1 and q2 on one SPE (canonicalised so result
    # attribute names align with the representative's result stream).
    direct = StreamProcessingEngine(catalog)
    direct.register(q1.canonical(catalog), "q1")
    direct.register(q2.canonical(catalog), "q2")
    # Representative execution on another SPE, split via the profiles.
    merged = StreamProcessingEngine(catalog)
    merged.register(rep.canonical(catalog), "q3", result_stream="s3")

    feed = AuctionWorkload(random.Random(seed)).feed(n_items)
    direct_results = direct.run(feed)
    merged_results = merged.run(feed)
    split: Dict[str, List[Datagram]] = {"q1": [], "q2": []}
    for datagram in merged_results["q3"]:
        for name, profile in (("q1", p1), ("q2", p2)):
            projected = profile.apply(datagram)
            if projected is not None:
                split[name].append(projected)

    ok = _same_results(direct_results["q1"], split["q1"]) and _same_results(
        direct_results["q2"], split["q2"]
    )
    return Table1Result(
        representative_cql=to_cql(rep),
        matches_paper_q3=matches,
        contains_q1=contains(q1, rep, catalog),
        contains_q2=contains(q2, rep, catalog),
        p1_projection=tuple(sorted(p1.projection_for("s3"))),
        p1_filter=str(p1.filters[0].condition),
        p2_projection=tuple(sorted(p2.projection_for("s3"))),
        p2_filter=str(p2.filters[0].condition),
        q1_direct=len(direct_results["q1"]),
        q1_via_split=len(split["q1"]),
        q2_direct=len(direct_results["q2"]),
        q2_via_split=len(split["q2"]),
        split_reproduces_direct=ok,
    )


def _same_results(a: List[Datagram], b: List[Datagram]) -> bool:
    def key(d: Datagram) -> Tuple:
        return tuple(sorted(d.payload.items()))

    return sorted(map(key, a)) == sorted(map(key, b))
