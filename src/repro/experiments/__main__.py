"""``python -m repro.experiments`` — run all experiments and print reports."""

from __future__ import annotations

from repro.experiments.runner import main

if __name__ == "__main__":
    raise SystemExit(main())
