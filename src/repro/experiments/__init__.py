"""Experiment harness: regenerate every figure and table of the paper.

* :mod:`repro.experiments.fig4` — the query-grouping performance sweep
  (Figure 4(a) benefit ratio, Figure 4(b) grouping ratio);
* :mod:`repro.experiments.fig3` — shared vs non-shared result delivery
  measured end to end on the Figure 3 overlay;
* :mod:`repro.experiments.table1` — the Table 1 queries, their
  representative and the split profiles, verified end to end;
* :mod:`repro.experiments.runner` — text-table reporting and a
  ``python -m repro.experiments`` entry point.
"""

from __future__ import annotations

from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Config, Fig4Result, run_fig4
from repro.experiments.table1 import Table1Result, run_table1
from repro.experiments.runner import render_table

__all__ = [
    "Fig3Result",
    "Fig4Config",
    "Fig4Result",
    "Table1Result",
    "render_table",
    "run_fig3",
    "run_fig4",
    "run_table1",
]
