"""Command-line interface.

::

    python -m repro experiments [--full]   # regenerate Table 1, Fig 3, Fig 4
    python -m repro table1 [--items N]     # the Table 1 verification only
    python -m repro fig3  [--items N]      # the Figure 3 measurement only
    python -m repro fig4  [--full]         # the Figure 4 sweep only
    python -m repro demo                   # the quickstart scenario + monitor
    python -m repro check [--workload W] [--strict]   # static analysis
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "COSMOS reproduction: content-based networking for distributed "
            "stream processing (Zhou et al., ICDE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="run every experiment and print reports")
    exp.add_argument("--full", action="store_true", help="paper-scale Figure 4 sweep")

    t1 = sub.add_parser("table1", help="Table 1: representative query and split")
    t1.add_argument("--items", type=int, default=300, help="auctions to replay")

    f3 = sub.add_parser("fig3", help="Figure 3: shared vs non-shared delivery")
    f3.add_argument("--items", type=int, default=200, help="auctions to replay")

    f4 = sub.add_parser("fig4", help="Figure 4: grouping performance sweep")
    f4.add_argument("--full", action="store_true", help="paper-scale parameters")

    sub.add_parser("demo", help="run the quickstart scenario with a status report")

    chk = sub.add_parser(
        "check", help="statically analyse a workload (schema, satisfiability, "
        "plans, routing) without running it"
    )
    chk.add_argument(
        "--workload",
        choices=["auction", "sensorscope", "all"],
        default="all",
        help="builtin workload to analyse (default: all)",
    )
    chk.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    return parser


def run_check(argv: Optional[Sequence[str]] = None) -> int:
    """The ``repro check`` subcommand, also ``python -m repro.analysis``.

    Exit codes: 0 clean (or warnings without ``--strict``), 1 warnings
    under ``--strict``, 2 errors.
    """
    parser = argparse.ArgumentParser(
        prog="repro check", description="static analysis for COSMOS workloads"
    )
    parser.add_argument(
        "--workload", choices=["auction", "sensorscope", "all"], default="all"
    )
    parser.add_argument("--strict", action="store_true")
    args = parser.parse_args(argv)
    return _cmd_check(args.workload, args.strict)


def _cmd_check(workload: str, strict: bool) -> int:
    from repro.analysis import BUILTIN_WORKLOADS, Report, analyze_builtin

    names = list(BUILTIN_WORKLOADS) if workload == "all" else [workload]
    combined = Report()
    for name in names:
        report = analyze_builtin(name)
        combined.extend(report)
        status = "clean" if report.is_clean else (
            f"{len(report.errors)} error(s), {len(report.warnings)} warning(s)"
        )
        print(f"workload {name}: {status}")
    rendered = combined.render()
    if rendered:
        print(rendered)
    return combined.exit_code(strict)


def _cmd_demo() -> int:
    import random

    from repro.overlay import DisseminationTree, barabasi_albert
    from repro.system import CosmosSystem, SystemMonitor
    from repro.workload import (
        QueryWorkload,
        SensorScopeReplayer,
        WorkloadConfig,
        sensorscope_catalog,
    )

    rng = random.Random(1)
    catalog = sensorscope_catalog(8, rng=random.Random(1))
    topology = barabasi_albert(60, 2, rng)
    tree = DisseminationTree.minimum_spanning(topology)
    system = CosmosSystem(tree, processor_nodes=[0, 1], topology=topology)
    for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
        system.add_source(schema, 10 + index)
    workload = QueryWorkload(
        catalog, WorkloadConfig(skew=1.5, join_fraction=0.0, seed=2)
    )
    for query in workload.generate(40):
        system.submit(query, user_node=rng.randrange(60))
    feed = SensorScopeReplayer(catalog, random.Random(3)).feed(20.0)
    delivered = system.replay(feed)
    print(f"replayed {len(feed)} tuples, delivered {delivered} results\n")
    print(SystemMonitor(system).report())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        from repro.experiments.runner import main as run_all

        return run_all(["--full"] if args.full else [])
    if args.command == "table1":
        from repro.experiments.runner import table1_report
        from repro.experiments.table1 import run_table1

        print(table1_report(run_table1(args.items)))
        return 0
    if args.command == "fig3":
        from repro.experiments.fig3 import run_fig3
        from repro.experiments.runner import fig3_report

        print(fig3_report(run_fig3(args.items)))
        return 0
    if args.command == "fig4":
        from repro.experiments.fig4 import Fig4Config, run_fig4
        from repro.experiments.runner import fig4_report

        config = Fig4Config.paper_scale() if args.full else None
        print(fig4_report(run_fig4(config)))
        return 0
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "check":
        return _cmd_check(args.workload, args.strict)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
