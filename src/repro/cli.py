"""Command-line interface.

::

    python -m repro experiments [--full]   # regenerate Table 1, Fig 3, Fig 4
    python -m repro table1 [--items N]     # the Table 1 verification only
    python -m repro fig3  [--items N]      # the Figure 3 measurement only
    python -m repro fig4  [--full]         # the Figure 4 sweep only
    python -m repro demo                   # the quickstart scenario + monitor
    python -m repro check [--workload W] [--strict]   # workload static analysis
    python -m repro check --self [--strict] [--code SPEC] [--json]  # source lint
    python -m repro chaos [--seed N | --seeds N] [--nodes N] [--recovery] [--conform] [--trace] [--json PATH]
    python -m repro flow [--json | --dot]  # extracted protocol model
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "COSMOS reproduction: content-based networking for distributed "
            "stream processing (Zhou et al., ICDE 2008)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiments", help="run every experiment and print reports")
    exp.add_argument("--full", action="store_true", help="paper-scale Figure 4 sweep")

    t1 = sub.add_parser("table1", help="Table 1: representative query and split")
    t1.add_argument("--items", type=int, default=300, help="auctions to replay")

    f3 = sub.add_parser("fig3", help="Figure 3: shared vs non-shared delivery")
    f3.add_argument("--items", type=int, default=200, help="auctions to replay")

    f4 = sub.add_parser("fig4", help="Figure 4: grouping performance sweep")
    f4.add_argument("--full", action="store_true", help="paper-scale parameters")

    sub.add_parser("demo", help="run the quickstart scenario with a status report")

    chk = sub.add_parser(
        "check", help="statically analyse a workload (schema, satisfiability, "
        "plans, routing) or, with --self, the package's own source"
    )
    _add_check_flags(chk)

    ch = sub.add_parser(
        "chaos",
        help="seeded fault-injection simulation checked by delivery oracles",
    )
    ch.add_argument(
        "--seed",
        type=int,
        default=None,
        help="replay exactly one seed (prints its full event trace)",
    )
    ch.add_argument(
        "--seeds",
        type=int,
        default=10,
        help="sweep seeds 0..N-1 (default 10; ignored with --seed)",
    )
    ch.add_argument(
        "--faults", type=int, default=2, help="crash events per run (default 2)"
    )
    ch.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="overlay size per run (default 18; the scale smoke uses 1000)",
    )
    ch.add_argument(
        "--recovery",
        action="store_true",
        help="self-healing mode: reliable uplinks heal losses, crashes "
        "are heartbeat-detected, and the delivery oracle demands the "
        "exact pristine feed (zero tolerated losses)",
    )
    ch.add_argument(
        "--migrate",
        action="store_true",
        help="adaptive load management: schedules carry hotspot scans "
        "plus a forced rebalance probe, and hot query groups move "
        "between processors by zero-loss live migration (requires "
        "--recovery)",
    )
    ch.add_argument(
        "--conform",
        action="store_true",
        help="replay each run's trace against the statically extracted "
        "protocol state machines (repro flow); an observed transition "
        "absent from the model fails the run",
    )
    ch.add_argument(
        "--trace", action="store_true", help="print every run's event trace"
    )
    ch.add_argument(
        "--no-shrink",
        dest="shrink",
        action="store_false",
        help="on failure, skip shrinking to a minimal schedule",
    )
    ch.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write run counters as JSON (the CI bench artifact)",
    )

    fl = sub.add_parser(
        "flow",
        help="dump the statically extracted protocol model: the "
        "message-flow graph and the lifecycle state machines",
    )
    fmt = fl.add_mutually_exclusive_group()
    fmt.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the full model as JSON (default)",
    )
    fmt.add_argument(
        "--dot",
        action="store_true",
        help="print the state machines as Graphviz DOT digraphs",
    )

    mo = sub.add_parser(
        "model",
        help="bounded model check of the composed protocol machines "
        "(COS901-904) and, with --coverage, chaos-corpus transition "
        "coverage (COS905)",
    )
    mo.add_argument(
        "--depth",
        type=int,
        default=None,
        metavar="N",
        help="bound the BFS exploration radius (default: exhaust; "
        "liveness checks are skipped on truncated runs)",
    )
    mofmt = mo.add_mutually_exclusive_group()
    mofmt.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print the model summary, findings and coverage as JSON "
        "(the BENCH_modelcov.json contract)",
    )
    mofmt.add_argument(
        "--dot",
        action="store_true",
        help="print the reachable product subgraph as Graphviz DOT "
        "(combine with --depth for a readable rendering)",
    )
    mo.add_argument(
        "--coverage",
        metavar="PATH",
        nargs="+",
        default=None,
        help="chaos --conform --json artifact(s) or directories of "
        "them; flags model transitions the corpus never exercised "
        "(COS905)",
    )
    mo.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="coverage baseline ledger "
        "(default: tools/modelcov-baseline.txt when present)",
    )
    mo.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any coverage baseline file",
    )
    mo.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (un-baselined COS905) as failures (exit 1)",
    )
    return parser


def _add_check_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        choices=["auction", "sensorscope", "all"],
        default="all",
        help="builtin workload to analyse (default: all; ignored with --self)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as failures (exit 1)",
    )
    parser.add_argument(
        "--self",
        dest="self_lint",
        action="store_true",
        help="lint the repro package source itself (COS5xx determinism, "
        "COS6xx protocol contracts, COS7xx style)",
    )
    parser.add_argument(
        "--code",
        metavar="SPEC",
        action="append",
        default=None,
        help="restrict findings to a comma list of codes or families "
        "(e.g. COS503 or COS8xx,COS601); repeatable — multiple --code "
        "flags accumulate",
    )
    parser.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="print findings as JSON (file, line, code, severity, message)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline ledger of accepted findings "
        "(default: tools/cos-baseline.txt when present; --self only)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (--self only)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline path and exit 0",
    )


def run_check(argv: Optional[Sequence[str]] = None) -> int:
    """The ``repro check`` subcommand, also ``python -m repro.analysis``.

    Exit codes: 0 clean (or warnings without ``--strict``), 1 warnings
    under ``--strict``, 2 errors (or a usage problem).
    """
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="static analysis for COSMOS workloads and, with "
        "--self, the package's own source",
    )
    _add_check_flags(parser)
    args = parser.parse_args(argv)
    return _cmd_check(args)


def _cmd_check(args: argparse.Namespace) -> int:
    if args.self_lint:
        return _cmd_check_self(args)
    import json

    from repro.analysis import BUILTIN_WORKLOADS, Report, analyze_builtin
    from repro.analysis.source import SourceError, parse_code_spec, spec_matches

    try:
        codes = parse_code_spec(",".join(args.code)) if args.code else None
    except SourceError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    names = list(BUILTIN_WORKLOADS) if args.workload == "all" else [args.workload]
    combined = Report()
    for name in names:
        report = analyze_builtin(name)
        if codes:
            report = Report(d for d in report if spec_matches(codes, d.code))
        combined.extend(report)
        if not args.as_json:
            status = "clean" if report.is_clean else (
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
            print(f"workload {name}: {status}")
    if args.as_json:
        print(json.dumps(combined.to_dict(), indent=2))
    else:
        print(combined.render())
    return combined.exit_code(args.strict)


def _cmd_check_self(args: argparse.Namespace) -> int:
    """``repro check --self``: the COS5xx/6xx/7xx source lint."""
    import json
    from pathlib import Path

    from repro.analysis import (
        Baseline,
        SourceError,
        check_package,
        default_baseline_path,
        default_package_dir,
        parse_code_spec,
    )

    try:
        codes = parse_code_spec(",".join(args.code)) if args.code else None
        package = default_package_dir()
        baseline_path = (
            Path(args.baseline) if args.baseline else default_baseline_path(package)
        )
        if args.write_baseline:
            report, _ = check_package(package, codes=codes)
            baseline_path.write_text(Baseline.from_report(report).dump())
            print(f"wrote {len(report)} finding(s) to {baseline_path}")
            return 0
        baseline = None
        if not args.no_baseline and baseline_path.is_file():
            baseline = Baseline.load(baseline_path)
        timings: dict = {}
        report, forgiven = check_package(
            package, baseline=baseline, codes=codes, timings=timings
        )
    except SourceError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        payload = report.to_dict()
        payload["forgiven"] = forgiven
        payload["analyzer"] = {
            "passes": [
                {"name": name, "seconds": round(seconds, 6)}
                for name, seconds in timings.items()
            ],
            "wall_seconds": round(sum(timings.values()), 6),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(report.render())
        if forgiven:
            print(f"{forgiven} baselined finding(s) suppressed")
    return report.exit_code(args.strict)


def _extract_model():
    """(flow graph, state machines) of the installed package source."""
    from repro.analysis.flowgraph import extract_flowgraph
    from repro.analysis.lifecycle import extract_lifecycle
    from repro.analysis.selfcheck import default_package_dir
    from repro.analysis.source import load_package

    modules = load_package(default_package_dir())
    return extract_flowgraph(modules), extract_lifecycle(modules)


def _machine_dot(machine) -> str:
    """One Graphviz digraph per machine (the docs render these)."""
    lines = [f'digraph "{machine.name}" {{', "  rankdir=LR;"]
    for state in machine.states:
        attrs = []
        if state in machine.initial:
            attrs.append("style=bold")
        if state in machine.terminal:
            attrs.append("peripheries=2")
        suffix = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f'  "{state}"{suffix};')
    for t in machine.transitions:
        lines.append(f'  "{t.source}" -> "{t.target}" [label="{t.label}"];')
    lines.append("}")
    return "\n".join(lines)


def _cmd_flow(args: argparse.Namespace) -> int:
    """``repro flow``: dump the extracted protocol model."""
    import json

    graph, machines = _extract_model()
    if args.dot:
        print("\n\n".join(_machine_dot(machine) for machine in machines))
        return 0
    payload = graph.to_dict()
    payload["machines"] = [machine.to_dict() for machine in machines]
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    """``repro model``: COS90x bounded model checking + coverage.

    Composes the extracted lifecycle machines with the environment
    automaton, explores the product exhaustively (or to ``--depth``),
    and reports COS901-904.  With ``--coverage`` the aggregated
    ``conformance_transitions`` of the given chaos artifacts are
    mapped onto the model and never-exercised transitions become
    COS905 warnings, minus the coverage baseline ledger.
    """
    import json
    from pathlib import Path

    from repro.analysis.lifecycle import extract_lifecycle
    from repro.analysis.model import (
        build_product,
        check_model,
        model_summary,
        product_dot,
    )
    from repro.analysis.modelcov import (
        check_coverage,
        coverage,
        default_coverage_baseline,
        load_corpus,
        summarize,
    )
    from repro.analysis.selfcheck import default_package_dir
    from repro.analysis.source import Baseline, SourceError, load_package

    try:
        modules = load_package(default_package_dir())
    except SourceError as exc:
        print(f"repro model: {exc}", file=sys.stderr)
        return 2
    machines = extract_lifecycle(modules)
    model = build_product(machines, modules)
    report, exploration = check_model(model, depth=args.depth)

    if args.dot:
        print(product_dot(model, exploration))
        return 0

    forgiven = 0
    coverage_payload = None
    if args.coverage:
        corpus = load_corpus([Path(p) for p in args.coverage])
        results = coverage(model, exploration, corpus)
        coverage_report = check_coverage(results, corpus)
        baseline_path = (
            Path(args.baseline)
            if args.baseline
            else default_coverage_baseline()
        )
        if not args.no_baseline and baseline_path.is_file():
            baseline = Baseline.load(baseline_path)
            coverage_report, forgiven, stale = baseline.audit(
                coverage_report
            )
            for rel, code, leftover in stale:
                coverage_report.add(
                    "COS704",
                    f"baseline allows {leftover} more {code} finding(s) "
                    f"in {rel} than the corpus still misses — remove "
                    "the entry (or lower its count)",
                    rel,
                    None,
                )
        report.extend(coverage_report)
        coverage_payload = summarize(results, corpus, forgiven)

    if args.as_json:
        payload = {"model": model_summary(model, exploration)}
        payload.update(report.to_dict())
        payload["forgiven"] = forgiven
        if coverage_payload is not None:
            payload["coverage"] = coverage_payload
        print(json.dumps(payload, indent=2))
        return report.exit_code(args.strict)

    summary = model_summary(model, exploration)
    print(
        f"product: {summary['states']} state(s), {summary['edges']} "
        f"edge(s), max depth {summary['max_depth']}, "
        + ("exhausted" if summary["exhausted"] else "TRUNCATED")
    )
    if model.uncertified:
        for action, anchor in model.uncertified:
            print(
                f"uncertified: {action} guard dropped — {anchor.func}() "
                f"in {anchor.module} lost {anchor.needle!r}"
            )
    if coverage_payload is not None:
        print(
            f"coverage: {coverage_payload['transitions_exercised']}/"
            f"{coverage_payload['transitions_total']} model "
            f"transition(s) exercised by {coverage_payload['seeds']} "
            f"conforming seed(s) "
            f"(raw {coverage_payload['coverage_raw']:.0%}, gated "
            f"{coverage_payload['coverage_gated']:.0%} after "
            f"{forgiven} baselined)"
        )
    print(report.render())
    if forgiven:
        print(f"{forgiven} baselined finding(s) suppressed")
    return report.exit_code(args.strict)


def _cmd_chaos(args: argparse.Namespace) -> int:
    """The ``repro chaos`` subcommand.

    ``--seed N`` replays one seed deterministically (the trace printed
    is byte-identical on every invocation — compare digests to confirm
    a replay); the default sweep runs seeds ``0..N-1`` as a smoke gate.
    On a violation the failing schedule is shrunk to a minimal event
    list (``--no-shrink`` to skip) and the exit code is 1.
    """
    import json
    import sys
    from dataclasses import replace

    from repro.sim import ChaosConfig, generate_schedule, run_schedule

    if args.migrate and not args.recovery:
        print(
            "repro chaos: --migrate requires --recovery (zero-loss "
            "migration rides the recovery ordering stage)",
            file=sys.stderr,
        )
        return 2
    seeds = [args.seed] if args.seed is not None else list(range(args.seeds))
    machines = None
    if args.conform:
        from repro.analysis.conformance import conformance_violations

        _graph, machines = _extract_model()
    records = []
    failed = False
    for seed in seeds:
        config = ChaosConfig(
            seed=seed,
            n_faults=args.faults,
            recovery=args.recovery,
            migrate=args.migrate,
        )
        if args.nodes is not None:
            config = replace(config, n_nodes=args.nodes)
        schedule = generate_schedule(config)
        report = run_schedule(config, schedule.events)
        print(report.render())
        if args.trace or args.seed is not None:
            print(report.trace.render())
        if not report.ok:
            failed = True
            if args.shrink:
                from repro.sim import shrink_failing_schedule

                minimal = shrink_failing_schedule(config, schedule.events)
                print(
                    f"minimal failing schedule "
                    f"({len(minimal)}/{len(schedule.events)} events):"
                )
                for event in minimal:
                    print(f"  {event.render()}")
        counters = report.counters.as_dict()
        record = {
            "seed": seed,
            "ok": report.ok,
            "trace_digest": report.trace.digest(),
            "violations": report.violations,
            **counters,
        }
        record["health"] = report.health
        if args.recovery:
            record["convergence_time"] = report.convergence_time
            record["reliability"] = report.reliability
        if machines is not None:
            transitions: dict = {}
            conform = conformance_violations(
                report.trace.render().splitlines(),
                machines,
                report.reliability,
                args.recovery,
                load=report.health,
                transitions=transitions,
            )
            record["conformance_violations"] = conform
            record["conformance_transitions"] = {
                machine: dict(sorted(bucket.items()))
                for machine, bucket in sorted(transitions.items())
            }
            if conform:
                failed = True
                print(f"seed {seed}: {len(conform)} conformance violation(s)")
                for violation in conform:
                    print(f"  {violation}")
        records.append(record)
    totals = {
        "deliveries_checked": sum(r["deliveries"] for r in records),
        "faults_injected": sum(r["faults_applied"] for r in records),
        "faults_refused": sum(r["faults_refused"] for r in records),
        "tuples_injected": sum(r["injects"] for r in records),
        "tuples_dropped": sum(r["drops"] for r in records),
        "violations": sum(len(r["violations"]) for r in records),
    }
    if machines is not None:
        totals["conformance_violations"] = sum(
            len(r["conformance_violations"]) for r in records
        )
    if args.recovery:
        for key in (
            "retransmits",
            "duplicates_suppressed",
            "gaps_abandoned",
            "repairs_applied",
            "queries_quarantined",
        ):
            totals[key] = sum(r["reliability"][key] for r in records)
    if args.migrate:
        for key in (
            "hotspots_detected",
            "migrations_started",
            "migrations_completed",
            "migrations_aborted",
            "migrations_retried",
        ):
            totals[key] = sum(r["health"][key] for r in records)
    print(
        "chaos totals: "
        + " ".join(f"{key}={value}" for key, value in totals.items())
    )
    if args.json:
        payload = {"seeds": records, "totals": totals, "ok": not failed}
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 1 if failed else 0


def _cmd_demo() -> int:
    import random

    from repro.overlay import DisseminationTree, barabasi_albert
    from repro.system import CosmosSystem, SystemMonitor
    from repro.workload import (
        QueryWorkload,
        SensorScopeReplayer,
        WorkloadConfig,
        sensorscope_catalog,
    )

    rng = random.Random(1)
    catalog = sensorscope_catalog(8, rng=random.Random(1))
    topology = barabasi_albert(60, 2, rng)
    tree = DisseminationTree.minimum_spanning(topology)
    system = CosmosSystem(tree, processor_nodes=[0, 1], topology=topology)
    for index, schema in enumerate(sorted(catalog, key=lambda s: s.name)):
        system.add_source(schema, 10 + index)
    workload = QueryWorkload(
        catalog, WorkloadConfig(skew=1.5, join_fraction=0.0, seed=2)
    )
    for query in workload.generate(40):
        system.submit(query, user_node=rng.randrange(60))
    feed = SensorScopeReplayer(catalog, random.Random(3)).feed(20.0)
    delivered = system.replay(feed)
    print(f"replayed {len(feed)} tuples, delivered {delivered} results\n")
    print(SystemMonitor(system).report())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "experiments":
        from repro.experiments.runner import main as run_all

        return run_all(["--full"] if args.full else [])
    if args.command == "table1":
        from repro.experiments.runner import table1_report
        from repro.experiments.table1 import run_table1

        print(table1_report(run_table1(args.items)))
        return 0
    if args.command == "fig3":
        from repro.experiments.fig3 import run_fig3
        from repro.experiments.runner import fig3_report

        print(fig3_report(run_fig3(args.items)))
        return 0
    if args.command == "fig4":
        from repro.experiments.fig4 import Fig4Config, run_fig4
        from repro.experiments.runner import fig4_report

        config = Fig4Config.paper_scale() if args.full else None
        print(fig4_report(run_fig4(config)))
        return 0
    if args.command == "demo":
        return _cmd_demo()
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "flow":
        return _cmd_flow(args)
    if args.command == "model":
        return _cmd_model(args)
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
