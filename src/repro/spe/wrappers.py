"""Data and query wrappers: the pluggable-SPE boundary.

Section 2: *"For each type of SPE, a data wrapper and a query wrapper
can be plugged into the system to translate the data and the queries
between COSMOS and the SPE."*  COSMOS itself speaks datagrams and CQL
ASTs; a wrapper pair adapts those to whatever a concrete engine wants.

Our bundled engine natively consumes both, so its wrappers are
identities — but the interfaces (and the text-round-trip wrapper, which
mimics engines that only accept query *strings*, like GSN's virtual
sensor descriptors) keep the boundary honest and tested.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.cbn.datagram import Datagram
from repro.cql.ast import ContinuousQuery
from repro.cql.parser import parse_query
from repro.cql.text import to_cql


class DataWrapper:
    """Translate datagrams to/from a concrete engine's tuple format."""

    def to_engine(self, datagram: Datagram) -> Any:
        raise NotImplementedError

    def from_engine(self, item: Any) -> Datagram:
        raise NotImplementedError


class QueryWrapper:
    """Translate a COSMOS query to a concrete engine's query format."""

    def to_engine(self, query: ContinuousQuery) -> Any:
        raise NotImplementedError

    def from_engine(self, item: Any) -> ContinuousQuery:
        raise NotImplementedError


class IdentityDataWrapper(DataWrapper):
    """For engines that consume COSMOS datagrams natively."""

    def to_engine(self, datagram: Datagram) -> Datagram:
        return datagram

    def from_engine(self, item: Datagram) -> Datagram:
        return item


class IdentityQueryWrapper(QueryWrapper):
    """For engines that consume the CQL AST natively."""

    def to_engine(self, query: ContinuousQuery) -> ContinuousQuery:
        return query

    def from_engine(self, item: ContinuousQuery) -> ContinuousQuery:
        return item


class TextQueryWrapper(QueryWrapper):
    """For engines configured with plain CQL text (GSN-style).

    ``to_engine`` renders the AST to text; ``from_engine`` parses text
    back.  The round trip is semantics-preserving for the supported
    fragment (covered by property tests).
    """

    def to_engine(self, query: ContinuousQuery) -> str:
        return to_cql(query)

    def from_engine(self, item: str) -> ContinuousQuery:
        return parse_query(item)


class ListDataWrapper(DataWrapper):
    """For engines that consume positional records.

    The wrapper is configured with the stream's attribute order and
    converts between datagrams and ``(stream, timestamp, [values])``
    triples — the shape of GSN's stream elements.
    """

    def __init__(self, attribute_order: List[str]) -> None:
        self._order = list(attribute_order)

    def to_engine(self, datagram: Datagram) -> tuple:
        values = [datagram.payload.get(name) for name in self._order]
        return (datagram.stream, datagram.timestamp, values)

    def from_engine(self, item: tuple) -> Datagram:
        stream, timestamp, values = item
        payload = {
            name: value
            for name, value in zip(self._order, values)
            if value is not None
        }
        return Datagram(stream, payload, timestamp)
