"""Relational operators over windowed streams.

These are the building blocks the engine compiles a
:class:`~repro.cql.ast.ContinuousQuery` into:

* :class:`Select` -- predicate filter over a (joined) binding;
* :class:`Project` -- attribute projection / renaming;
* :class:`SymmetricWindowJoin` -- the n-way symmetric window join whose
  pairing rule is exactly Lemma 1 of the paper: tuples ``t1`` (stream 1,
  window ``T1``) and ``t2`` (stream 2, window ``T2``) join iff they
  satisfy the join predicates and ``-T1 <= t1.ts - t2.ts <= T2``;
* :class:`GroupedAggregate` -- windowed grouped aggregation re-emitting
  the affected group's row on every arrival.

Bindings are plain ``dict`` objects mapping *qualified* attribute names
(``"O.itemID"``) to values, so the query's
:class:`~repro.cql.predicates.Conjunction` evaluates directly on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.cbn.datagram import Datagram, Value
from repro.cql.predicates import Conjunction
from repro.spe.windows import WindowBuffer

Binding = Dict[str, Value]


def qualify(qualifier: str, datagram: Datagram) -> Binding:
    """Turn a raw stream tuple into a qualified binding.

    ``{"itemID": 7}`` from reference ``O`` becomes ``{"O.itemID": 7}``,
    plus the implicit ``"O.timestamp"`` when the payload does not carry
    an explicit timestamp attribute (sensor streams usually do).
    """
    binding: Binding = {
        f"{qualifier}.{name}": value for name, value in datagram.payload.items()
    }
    binding.setdefault(f"{qualifier}.timestamp", datagram.timestamp)
    return binding


class Select:
    """Filter bindings through a conjunction."""

    def __init__(self, condition: Conjunction) -> None:
        self.condition = condition

    def process(self, binding: Binding) -> Optional[Binding]:
        return binding if self.condition.evaluate(binding) else None


class Project:
    """Keep (and optionally rename) a list of binding attributes.

    ``columns`` maps output name -> input name.  Missing inputs raise,
    because by the time a binding reaches projection the query has been
    validated against the catalog.
    """

    def __init__(self, columns: Mapping[str, str]) -> None:
        self.columns = dict(columns)

    def process(self, binding: Binding) -> Binding:
        try:
            return {out: binding[src] for out, src in self.columns.items()}
        except KeyError as exc:
            raise KeyError(
                f"projection input {exc.args[0]!r} missing from binding "
                f"{sorted(binding)}"
            ) from None


@dataclass
class JoinInput:
    """One input of the symmetric join: a qualifier and its window size."""

    qualifier: str
    window: float


class SymmetricWindowJoin:
    """N-way symmetric window join with Lemma 1 pairing semantics.

    Tuples must arrive in global timestamp order.  On an arrival for
    input *i*, every other input's buffer is expired to the arrival
    time and the new tuple is combined with all remaining combinations
    of buffered tuples; each combined binding is handed to the caller's
    predicate.  Combining only with *previously arrived* tuples makes
    every result pair appear exactly once.
    """

    def __init__(self, inputs: Sequence[JoinInput]) -> None:
        if not inputs:
            raise ValueError("join needs at least one input")
        self._inputs = list(inputs)
        self._buffers: Dict[str, WindowBuffer] = {
            spec.qualifier: WindowBuffer(spec.window) for spec in inputs
        }

    @property
    def qualifiers(self) -> List[str]:
        return [spec.qualifier for spec in self._inputs]

    def process(self, qualifier: str, datagram: Datagram) -> List[Binding]:
        """Feed one arrival; return the new combined bindings.

        For a single-input "join" this simply returns the arrival's own
        binding (select-project queries reuse the same pipeline).
        """
        if qualifier not in self._buffers:
            raise KeyError(f"unknown join input {qualifier!r}")
        now = datagram.timestamp
        others = [q for q in self._buffers if q != qualifier]
        for other in others:
            self._buffers[other].expire(now)
        new_binding = qualify(qualifier, datagram)
        results: List[Binding] = []
        partials: List[Binding] = [new_binding]
        for other in others:
            buffered = self._buffers[other].contents()
            if not buffered:
                partials = []
                break
            extended: List[Binding] = []
            for partial in partials:
                for old in buffered:
                    combined = dict(partial)
                    combined.update(qualify(other, old))
                    extended.append(combined)
            partials = extended
        results.extend(partials)
        # Window semantics of the *arriving* stream bound how long this
        # tuple itself stays joinable; insert after combining so a tuple
        # never joins with itself.
        self._buffers[qualifier].insert(datagram)
        self._buffers[qualifier].expire(now)
        return results


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate column: function, input attribute, output name."""

    func: str
    attribute: Optional[str]  # qualified input name; None for COUNT(*)
    output_name: str


class GroupedAggregate:
    """Windowed grouped aggregation.

    Holds one window buffer per input stream reference; on every
    arrival the aggregate values of the affected groups are recomputed
    over the visible window contents and the affected group's current
    row is emitted (an *Istream*-style update stream).

    The implementation recomputes from the window rather than
    maintaining incremental state: simple, obviously correct, and fast
    enough for the scales the experiments use.
    """

    def __init__(
        self,
        qualifier: str,
        window: float,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
        pre_filter: Optional[Conjunction] = None,
    ) -> None:
        self._qualifier = qualifier
        self._buffer = WindowBuffer(window)
        self._group_by = list(group_by)
        self._aggregates = list(aggregates)
        self._pre_filter = pre_filter or Conjunction.true()

    def process(self, datagram: Datagram) -> List[Binding]:
        now = datagram.timestamp
        self._buffer.expire(now)
        binding = qualify(self._qualifier, datagram)
        if not self._pre_filter.evaluate(binding):
            # Tuples failing the selection never enter the window.
            return []
        self._buffer.insert(datagram)
        key = tuple(binding.get(attr) for attr in self._group_by)
        members = [
            qualify(self._qualifier, item)
            for item in self._buffer.contents()
        ]
        members = [
            m
            for m in members
            if tuple(m.get(attr) for attr in self._group_by) == key
        ]
        row: Binding = {
            attr: value for attr, value in zip(self._group_by, key)
        }
        for spec in self._aggregates:
            row[spec.output_name] = _compute_aggregate(spec, members)
        return [row]


def _compute_aggregate(spec: AggregateSpec, members: List[Binding]) -> Value:
    if spec.func == "count":
        if spec.attribute is None:
            return len(members)
        return sum(1 for m in members if spec.attribute in m)
    values = [m[spec.attribute] for m in members if spec.attribute in m]
    if not values:
        raise ValueError(
            f"aggregate {spec.func} over empty group (arrival should have "
            "populated it)"
        )
    if spec.func == "sum":
        return sum(values)  # type: ignore[arg-type]
    if spec.func == "avg":
        return sum(values) / len(values)  # type: ignore[arg-type]
    if spec.func == "min":
        return min(values)
    if spec.func == "max":
        return max(values)
    raise ValueError(f"unknown aggregate function {spec.func!r}")
