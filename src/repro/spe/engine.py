"""A single-site continuous query engine.

The engine registers :class:`~repro.cql.ast.ContinuousQuery` ASTs and is
fed stream tuples (as :class:`~repro.cbn.datagram.Datagram`) in global
timestamp order; it returns result tuples per query.  Result tuples are
datagrams on the query's *result stream*: the payload keys are the
query's qualified output attribute names (``"O.itemID"``), which is the
schema the query layer advertises for result delivery through the CBN.

Supported query shapes (the fragment the paper's query layer targets):

* select-project over one windowed stream;
* select-project-join over n windowed streams (Lemma 1 semantics);
* grouped/global aggregation over one windowed stream.

Join+aggregate in one query is not supported (the paper's experiments
never need it); registering one raises :class:`EngineError`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cbn.datagram import Datagram
from repro.cql.ast import Aggregate, ContinuousQuery, QueryError
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.spe.operators import (
    AggregateSpec,
    Binding,
    GroupedAggregate,
    JoinInput,
    Project,
    Select,
    SymmetricWindowJoin,
)


class EngineError(Exception):
    """Raised for unsupported or malformed query registrations."""


@dataclass(frozen=True)
class QueryResult:
    """One result tuple produced by one registered query."""

    query_name: str
    datagram: Datagram


class _CompiledQuery:
    """Operator pipeline for one registered query."""

    def __init__(
        self,
        name: str,
        query: ContinuousQuery,
        catalog: Catalog,
        result_stream: str,
        join_strategy: str = "nested",
    ) -> None:
        self.name = name
        self.query = query
        self.result_stream = result_stream
        #: stream name -> qualifier, for dispatching arrivals.
        self.inputs: Dict[str, str] = {
            ref.stream: ref.name for ref in query.streams
        }
        self._select = Select(query.predicate)
        self._aggregate: Optional[GroupedAggregate] = None
        self._join: Optional[SymmetricWindowJoin] = None
        self._project: Optional[Project] = None

        if query.is_aggregate:
            if len(query.streams) != 1:
                raise EngineError(
                    "aggregate queries over joins are not supported"
                )
            ref = query.streams[0]
            specs = [
                AggregateSpec(
                    agg.func,
                    agg.arg.key if agg.arg is not None else None,
                    agg.name,
                )
                for agg in query.aggregates
            ]
            self._aggregate = GroupedAggregate(
                ref.name,
                ref.window.size,
                [attr.key for attr in query.group_by],
                specs,
                pre_filter=query.predicate,
            )
        else:
            self._join = self._build_join(query, join_strategy)
            columns = {
                attr.key: attr.key for attr in query.projected_attributes(catalog)
            }
            self._project = Project(columns)

    @staticmethod
    def _build_join(query: ContinuousQuery, strategy: str):
        """Pick the join implementation.

        ``"indexed"`` uses the hash-probing join for two-way equijoins
        (falling back to the nested-loop join otherwise); ``"nested"``
        always uses the nested-loop join.  Both have identical Lemma 1
        semantics.
        """
        inputs = [JoinInput(ref.name, ref.window.size) for ref in query.streams]
        if strategy == "indexed" and len(inputs) == 2:
            from repro.spe.indexed import IndexedSymmetricJoin, equijoin_key_pairs

            pairs = equijoin_key_pairs(
                query.predicate, inputs[0].qualifier, inputs[1].qualifier
            )
            if pairs:
                return IndexedSymmetricJoin(inputs[0], inputs[1], pairs)
        elif strategy not in ("nested", "indexed"):
            raise EngineError(f"unknown join strategy {strategy!r}")
        return SymmetricWindowJoin(inputs)

    def feed(self, stream: str, datagram: Datagram) -> List[Datagram]:
        qualifier = self.inputs.get(stream)
        if qualifier is None:
            return []
        if self._aggregate is not None:
            rows = self._aggregate.process(datagram)
            return [
                Datagram(self.result_stream, row, datagram.timestamp)
                for row in rows
            ]
        assert self._join is not None and self._project is not None
        out: List[Datagram] = []
        for binding in self._join.process(qualifier, datagram):
            selected = self._select.process(binding)
            if selected is None:
                continue
            row = self._project.process(selected)
            out.append(Datagram(self.result_stream, row, datagram.timestamp))
        return out


class StreamProcessingEngine:
    """The pluggable single-site SPE.

    Parameters
    ----------
    catalog:
        Schemas of the source streams queries may reference.
    """

    def __init__(self, catalog: Catalog, join_strategy: str = "nested") -> None:
        if join_strategy not in ("nested", "indexed"):
            raise EngineError(f"unknown join strategy {join_strategy!r}")
        self.catalog = catalog
        self.join_strategy = join_strategy
        self._queries: Dict[str, _CompiledQuery] = {}
        self._by_stream: Dict[str, List[_CompiledQuery]] = {}
        self._counter = itertools.count()
        self._last_timestamp: Optional[float] = None

    # -- registration ------------------------------------------------------------

    def register(
        self,
        query: ContinuousQuery,
        name: Optional[str] = None,
        result_stream: Optional[str] = None,
    ) -> str:
        """Register a continuous query; returns its engine-local name.

        ``result_stream`` defaults to ``"<name>:results"`` — the unique
        result-stream name the query layer advertises on the CBN.
        """
        if name is None:
            name = query.name or f"q{next(self._counter)}"
        if name in self._queries:
            raise EngineError(f"duplicate query name {name!r}")
        query.validate(self.catalog)
        if result_stream is None:
            result_stream = f"{name}:results"
        compiled = _CompiledQuery(
            name, query, self.catalog, result_stream, self.join_strategy
        )
        self._queries[name] = compiled
        for stream in compiled.inputs:
            self._by_stream.setdefault(stream, []).append(compiled)
        return name

    def deregister(self, name: str) -> None:
        compiled = self._queries.pop(name, None)
        if compiled is None:
            raise EngineError(f"unknown query {name!r}")
        for stream in compiled.inputs:
            self._by_stream[stream] = [
                c for c in self._by_stream[stream] if c.name != name
            ]

    @property
    def query_names(self) -> List[str]:
        return sorted(self._queries)

    def result_stream_of(self, name: str) -> str:
        try:
            return self._queries[name].result_stream
        except KeyError:
            raise EngineError(f"unknown query {name!r}") from None

    def result_schema_of(self, name: str) -> StreamSchema:
        """Schema of a registered query's result stream.

        Attribute metadata (type, domain) is copied from the source
        schemas so the cost model can price result streams too.
        """
        compiled = self._queries.get(name)
        if compiled is None:
            raise EngineError(f"unknown query {name!r}")
        return result_schema(
            compiled.query, self.catalog, compiled.result_stream
        )

    # -- execution ------------------------------------------------------------------

    def push(self, datagram: Datagram) -> List[QueryResult]:
        """Feed one source tuple; returns all result tuples it produced.

        Tuples must arrive in non-decreasing timestamp order across all
        streams (the discrete-event layer guarantees this).
        """
        if (
            self._last_timestamp is not None
            and datagram.timestamp < self._last_timestamp
        ):
            raise EngineError(
                f"out-of-order tuple at {datagram.timestamp} "
                f"(last was {self._last_timestamp})"
            )
        self._last_timestamp = datagram.timestamp
        results: List[QueryResult] = []
        for compiled in self._by_stream.get(datagram.stream, []):
            for out in compiled.feed(datagram.stream, datagram):
                results.append(QueryResult(compiled.name, out))
        return results

    def push_to(self, name: str, datagram: Datagram) -> List[QueryResult]:
        """Feed one tuple to *one* registered query.

        Processors use this when the CBN delivers per-subscription
        copies of a source tuple: each query group's subscription
        carries its own early projection, so its copy must only reach
        that group's representative.
        """
        compiled = self._queries.get(name)
        if compiled is None:
            raise EngineError(f"unknown query {name!r}")
        if (
            self._last_timestamp is not None
            and datagram.timestamp < self._last_timestamp
        ):
            raise EngineError(
                f"out-of-order tuple at {datagram.timestamp} "
                f"(last was {self._last_timestamp})"
            )
        self._last_timestamp = datagram.timestamp
        return [
            QueryResult(name, out)
            for out in compiled.feed(datagram.stream, datagram)
        ]

    def run(self, feed: Sequence[Datagram]) -> Dict[str, List[Datagram]]:
        """Convenience: push a whole timestamp-ordered feed.

        Returns result tuples grouped by query name.
        """
        out: Dict[str, List[Datagram]] = {name: [] for name in self._queries}
        for datagram in feed:
            for result in self.push(datagram):
                out[result.query_name].append(result.datagram)
        return out


def result_schema(
    query: ContinuousQuery, catalog: Catalog, stream_name: str
) -> StreamSchema:
    """Derive the result-stream schema of a query.

    SPJ output attributes keep the type/domain of their source
    attribute (named by their qualified key).  Aggregate outputs are
    floats except COUNT (int); grouping attributes keep their source
    metadata.
    """
    attributes: List[Attribute] = []
    if query.is_aggregate:
        for attr in query.group_by:
            source = _source_attribute(query, catalog, attr.qualifier, attr.name)
            attributes.append(
                Attribute(attr.key, source.type, source.lo, source.hi, source.width)
            )
        for agg in query.aggregates:
            attr_type = "int" if agg.func == "count" else "float"
            attributes.append(Attribute(agg.name, attr_type))
    else:
        for attr in query.projected_attributes(catalog):
            source = _source_attribute(query, catalog, attr.qualifier, attr.name)
            attributes.append(
                Attribute(attr.key, source.type, source.lo, source.hi, source.width)
            )
    return StreamSchema(stream_name, attributes, rate=1.0)


def _source_attribute(
    query: ContinuousQuery,
    catalog: Catalog,
    qualifier: Optional[str],
    name: str,
) -> Attribute:
    if qualifier is None:
        raise QueryError(f"unqualified attribute {name!r}")
    ref = query.stream_ref(qualifier)
    schema = catalog.get(ref.stream)
    if name == "timestamp" and not schema.has_attribute("timestamp"):
        # The implicit application timestamp every stream carries.
        return Attribute("timestamp", "timestamp")
    return schema.attribute(name)
