"""Time-based sliding window buffers.

A window predicate ``w(T)`` defines, at application time ``tau``, the
temporal relation of tuples with timestamps in ``[tau - T, tau]``
(section 4).  ``T = 0`` is CQL's ``[Now]`` (only tuples stamped exactly
``tau``); ``T = inf`` is ``[Unbounded]``.

:class:`WindowBuffer` assumes tuples are inserted in non-decreasing
timestamp order, which lets expiry pop from the front of a deque.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.cbn.datagram import Datagram


class WindowError(Exception):
    """Raised on out-of-order insertion."""


class WindowBuffer:
    """Tuples of one stream visible through a sliding window of ``size`` s."""

    def __init__(self, size: float) -> None:
        if size < 0:
            raise WindowError(f"window size must be non-negative, got {size}")
        self.size = size
        self._tuples: Deque[Datagram] = deque()
        self._last_timestamp: Optional[float] = None

    def insert(self, item: Datagram) -> None:
        """Add a tuple; timestamps must be non-decreasing."""
        if (
            self._last_timestamp is not None
            and item.timestamp < self._last_timestamp
        ):
            raise WindowError(
                f"out-of-order tuple: {item.timestamp} after {self._last_timestamp}"
            )
        self._last_timestamp = item.timestamp
        self._tuples.append(item)

    def expire(self, now: float) -> List[Datagram]:
        """Drop and return tuples that fell out of the window at ``now``.

        A tuple with timestamp ``ts`` is visible while
        ``now - size <= ts``; with an unbounded window nothing expires.
        """
        if math.isinf(self.size):
            return []
        expired: List[Datagram] = []
        bound = now - self.size
        while self._tuples and self._tuples[0].timestamp < bound:
            expired.append(self._tuples.popleft())
        return expired

    def contents(self, now: Optional[float] = None) -> List[Datagram]:
        """The visible tuples, optionally expiring as of ``now`` first."""
        if now is not None:
            self.expire(now)
        return list(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Datagram]:
        return iter(self._tuples)
