"""A second join implementation: hash-indexed symmetric window join.

COSMOS explicitly allows *different* stream processing engines on
different processors (section 2).  This module provides the performance
-oriented variant of the window join: instead of scanning every
buffered tuple of the other inputs (the obviously-correct
:class:`~repro.spe.operators.SymmetricWindowJoin`), each input keeps a
hash index keyed by the equijoin attributes, so an arrival only probes
the matching bucket.

Semantics are *identical* to the nested-loop join (Lemma 1 pairing,
each pair produced once) — asserted by differential and property tests
— only the probe complexity changes: O(bucket) instead of O(window).
The engine picks this implementation for two-way equijoins when
constructed with ``join_strategy="indexed"``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.cbn.datagram import Datagram, Value
from repro.cql.predicates import Conjunction
from repro.spe.operators import Binding, JoinInput, qualify


class IndexError_(Exception):
    """Raised for unsupported index configurations."""


class _HashedWindow:
    """A window buffer with a hash index on a key attribute tuple.

    Expiry pops from an arrival-ordered deque and removes the tuple
    from its bucket; buckets keep arrival order so results are
    deterministic.
    """

    def __init__(self, size: float, key_attrs: Sequence[str]) -> None:
        self.size = size
        self._key_attrs = list(key_attrs)
        self._arrivals: Deque[Tuple[Tuple[Value, ...], Datagram]] = deque()
        self._buckets: Dict[Tuple[Value, ...], Deque[Datagram]] = {}

    def key_of(self, datagram: Datagram) -> Optional[Tuple[Value, ...]]:
        """The index key of a tuple; ``None`` when a key attribute is
        missing (such tuples can never satisfy the equijoin)."""
        try:
            return tuple(datagram.payload[attr] for attr in self._key_attrs)
        except KeyError:
            return None

    def insert(self, datagram: Datagram) -> None:
        key = self.key_of(datagram)
        if key is None:
            return
        self._arrivals.append((key, datagram))
        self._buckets.setdefault(key, deque()).append(datagram)

    def expire(self, now: float) -> None:
        bound = now - self.size
        while self._arrivals and self._arrivals[0][1].timestamp < bound:
            key, datagram = self._arrivals.popleft()
            bucket = self._buckets.get(key)
            if bucket:
                bucket.popleft()
                if not bucket:
                    del self._buckets[key]

    def probe(self, key: Tuple[Value, ...]) -> List[Datagram]:
        return list(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return len(self._arrivals)


class IndexedSymmetricJoin:
    """Two-way symmetric window equijoin with hash probing.

    ``key_pairs`` lists the equijoin attribute pairs as
    ``(left_attr, right_attr)`` *unqualified* attribute names of the two
    inputs.  Residual (non-equijoin) predicates are evaluated by the
    caller on the combined binding, exactly as with the nested join.
    """

    def __init__(
        self,
        left: JoinInput,
        right: JoinInput,
        key_pairs: Sequence[Tuple[str, str]],
    ) -> None:
        if not key_pairs:
            raise IndexError_("indexed join needs at least one equijoin pair")
        self._inputs = {left.qualifier: left, right.qualifier: right}
        self._other = {left.qualifier: right.qualifier, right.qualifier: left.qualifier}
        left_keys = [pair[0] for pair in key_pairs]
        right_keys = [pair[1] for pair in key_pairs]
        self._windows = {
            left.qualifier: _HashedWindow(left.window, left_keys),
            right.qualifier: _HashedWindow(right.window, right_keys),
        }

    @property
    def qualifiers(self) -> List[str]:
        return list(self._inputs)

    def process(self, qualifier: str, datagram: Datagram) -> List[Binding]:
        """Feed one arrival; return the combined bindings (Lemma 1)."""
        if qualifier not in self._inputs:
            raise KeyError(f"unknown join input {qualifier!r}")
        now = datagram.timestamp
        other = self._other[qualifier]
        self._windows[other].expire(now)
        my_window = self._windows[qualifier]
        key = my_window.key_of(datagram)
        results: List[Binding] = []
        if key is not None:
            new_binding = qualify(qualifier, datagram)
            for old in self._windows[other].probe(key):
                combined = dict(new_binding)
                combined.update(qualify(other, old))
                results.append(combined)
        my_window.insert(datagram)
        my_window.expire(now)
        return results


def equijoin_key_pairs(
    predicate: Conjunction, left_qualifier: str, right_qualifier: str
) -> List[Tuple[str, str]]:
    """Extract the cross-input equijoin attribute pairs of a predicate.

    Returns ``(left_attr, right_attr)`` pairs for links connecting the
    two qualifiers; links within one input or to other terms are left
    for residual evaluation.
    """
    pairs: List[Tuple[str, str]] = []
    lp, rp = f"{left_qualifier}.", f"{right_qualifier}."
    for a, b in sorted(predicate.links):
        if a.startswith(lp) and b.startswith(rp):
            pairs.append((a[len(lp):], b[len(rp):]))
        elif a.startswith(rp) and b.startswith(lp):
            pairs.append((b[len(lp):], a[len(rp):]))
    return pairs
