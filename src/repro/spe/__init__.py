"""Stream processing engine (SPE) substrate.

COSMOS treats the SPE as a pluggable component: processors may run
TelegraphCQ, STREAM, Aurora or (in the paper's experiments) GSN, each
behind a *data wrapper* and a *query wrapper* (section 2).  This
package provides a from-scratch single-site SPE with the semantics the
query layer relies on:

* time-based sliding windows ``[Range T]`` / ``[Now]`` / ``[Unbounded]``
  (:mod:`repro.spe.windows`);
* select / project / symmetric window join (Lemma 1 semantics) /
  grouped aggregation (:mod:`repro.spe.operators`);
* a continuous-query executor fed tuples in timestamp order
  (:mod:`repro.spe.engine`);
* the wrapper interfaces that adapt COSMOS datagrams and CQL text to a
  concrete engine (:mod:`repro.spe.wrappers`).
"""

from __future__ import annotations

from repro.spe.engine import QueryResult, StreamProcessingEngine
from repro.spe.windows import WindowBuffer
from repro.spe.wrappers import (
    DataWrapper,
    IdentityDataWrapper,
    QueryWrapper,
    TextQueryWrapper,
)

__all__ = [
    "DataWrapper",
    "IdentityDataWrapper",
    "QueryResult",
    "QueryWrapper",
    "StreamProcessingEngine",
    "TextQueryWrapper",
    "WindowBuffer",
]
