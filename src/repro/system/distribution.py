"""Query distribution (load management).

Section 2: *"A user query is first distributed to a processor by the
load management service"*.  The paper leaves the policy open; this
module provides the natural family:

* :class:`RoundRobinDistribution` — cycle through processors;
* :class:`LeastLoadedDistribution` — fewest resident merged groups wins;
* :class:`ProximityDistribution` — smallest tree distance to the user;
* :class:`StreamAffinityDistribution` — hash of the query's stream set,
  so queries over the same streams land on the same processor, which
  maximises the grouping optimizer's merging opportunities (used by the
  Figure 4 reproduction).
* :class:`CostAwareDistribution` — smallest estimated communication
  cost for this query (source->processor plus processor->user paths),
  in the spirit of the operator-placement literature the paper cites
  ([13, 17]).  Note the tension with merging: placing each query
  individually optimally can split same-FROM-set queries across
  processors and forfeit grouping opportunities (quantified in
  ``benchmarks/test_ablations.py``).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.cost import CostModel
from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog
from repro.overlay.topology import NodeId
from repro.overlay.tree import DisseminationTree
from repro.system.node import Processor


class DistributionError(Exception):
    """Raised when no processor is available."""


class QueryDistribution:
    """Policy interface: pick the processor for one user query."""

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        raise NotImplementedError

    @staticmethod
    def _require(processors: Sequence[Processor]) -> None:
        if not processors:
            raise DistributionError("no processors available")


class RoundRobinDistribution(QueryDistribution):
    def __init__(self) -> None:
        self._counter = itertools.count()

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        self._require(processors)
        return processors[next(self._counter) % len(processors)]


class LeastLoadedDistribution(QueryDistribution):
    """Fewest merged groups currently resident (ties broken by node id).

    Groups, not raw queries, are the unit of processor work: ten
    queries merged into one group evaluate one representative, so
    counting them as ten would steer new load away from a processor
    that is in fact nearly idle.  This mirrors the load manager's view
    (:mod:`repro.system.loadmgr` migrates whole groups for the same
    reason).
    """

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        self._require(processors)
        return min(processors, key=lambda p: (p.group_count, p.node_id))


class ProximityDistribution(QueryDistribution):
    """Closest processor to the submitting user on the tree."""

    def __init__(self, tree: DisseminationTree) -> None:
        self._tree = tree

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        self._require(processors)
        return min(
            processors,
            key=lambda p: (
                self._tree.path_weight(user_node, p.node_id),
                p.node_id,
            ),
        )


class CapacityAwareDistribution(QueryDistribution):
    """Respect heterogeneous processor capacities.

    The paper's servers "have different capabilities due to their
    different hardware and software configurations"; this policy wraps
    another policy but only offers it processors with spare capacity
    (``capacities`` maps node id to a maximum query count; unlisted
    processors are unconstrained).  When every processor is full the
    least-loaded one is used anyway (shedding is out of scope).
    """

    def __init__(
        self,
        inner: QueryDistribution,
        capacities: Dict[NodeId, int],
    ) -> None:
        self._inner = inner
        self._capacities = dict(capacities)

    def _has_room(self, processor: Processor) -> bool:
        cap = self._capacities.get(processor.node_id)
        return cap is None or processor.query_count < cap

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        self._require(processors)
        available = [p for p in processors if self._has_room(p)]
        if not available:
            return min(processors, key=lambda p: (p.query_count, p.node_id))
        return self._inner.choose(query, user_node, available)


class CostAwareDistribution(QueryDistribution):
    """Placement by estimated per-query communication cost.

    For each candidate processor: the query's source streams flow from
    their source nodes to the processor (filtered/projected rate) and
    the result stream flows from the processor to the user — choose the
    processor minimising the total of rate x tree path weight.  This is
    per-query-optimal placement in the style of the operator-placement
    systems the paper contrasts with; it ignores sharing, so pairing it
    with the grouping optimizer trades merging opportunity for shorter
    paths (see the placement ablation).
    """

    def __init__(
        self,
        tree: DisseminationTree,
        catalog: Catalog,
        source_nodes: Mapping[str, NodeId],
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self._tree = tree
        self._catalog = catalog
        self._source_nodes = dict(source_nodes)
        self._cost = cost_model or CostModel()

    def _query_cost(
        self, query: ContinuousQuery, processor: NodeId, user: NodeId
    ) -> float:
        canonical = query.canonical(self._catalog)
        total = 0.0
        for ref in canonical.streams:
            source = self._source_nodes.get(ref.stream)
            if source is None:
                continue
            rate = self._cost.source_flow_rate(
                canonical, ref.stream, self._catalog
            )
            total += rate * self._tree.path_weight(source, processor)
        result_rate = self._cost.result_rate(canonical, self._catalog)
        total += result_rate * self._tree.path_weight(processor, user)
        return total

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        self._require(processors)
        return min(
            processors,
            key=lambda p: (
                self._query_cost(query, p.node_id, user_node),
                p.node_id,
            ),
        )


class StreamAffinityDistribution(QueryDistribution):
    """Deterministic stream-set hashing.

    All queries over the same FROM set reach the same processor, so the
    per-processor grouping optimizer sees every merging opportunity.
    """

    def choose(
        self,
        query: ContinuousQuery,
        user_node: NodeId,
        processors: Sequence[Processor],
    ) -> Processor:
        self._require(processors)
        key = ",".join(sorted(set(query.stream_names)))
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        index = int.from_bytes(digest[:4], "big") % len(processors)
        return processors[index]
