"""Broker and processor node models (Figure 2).

A *broker* runs only the data layer (it is a position on the
dissemination tree; the routing itself lives in
:class:`~repro.cbn.network.ContentBasedNetwork`).  A *processor*
additionally runs the query layer: a query manager, a pluggable SPE
behind its data/query wrappers, and the bookkeeping to keep its CBN
subscriptions in line with the groups the manager maintains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cbn.datagram import Datagram
from repro.cbn.network import ContentBasedNetwork
from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog
from repro.core.grouping import GroupingOptimizer, QueryGroup
from repro.core.manager import QueryManager, Submission
from repro.core.cost import CostModel
from repro.overlay.topology import NodeId
from repro.spe.engine import StreamProcessingEngine
from repro.spe.wrappers import (
    DataWrapper,
    IdentityDataWrapper,
    IdentityQueryWrapper,
    QueryWrapper,
)


@dataclass
class Broker:
    """A data-layer-only server: routes datagrams, processes nothing."""

    node_id: NodeId

    @property
    def is_processor(self) -> bool:
        return False


class Processor:
    """A server equipped with a stream processing engine.

    The processor subscribes to the CBN for the source data of each of
    its query groups, feeds delivered datagrams through the data
    wrapper into the SPE, and publishes result tuples back into the
    CBN under the group's result-stream name.
    """

    def __init__(
        self,
        node_id: NodeId,
        catalog: Catalog,
        network: Optional[ContentBasedNetwork] = None,
        data_wrapper: Optional[DataWrapper] = None,
        query_wrapper: Optional[QueryWrapper] = None,
        grouping: Optional[GroupingOptimizer] = None,
        cost_model: Optional[CostModel] = None,
        join_strategy: str = "nested",
    ) -> None:
        self.node_id = node_id
        self.catalog = catalog
        self.network = network
        self.data_wrapper = data_wrapper or IdentityDataWrapper()
        self.query_wrapper = query_wrapper or IdentityQueryWrapper()
        self.spe = StreamProcessingEngine(catalog, join_strategy=join_strategy)
        self.manager = QueryManager(
            catalog,
            self.spe,
            grouping=grouping,
            cost_model=cost_model,
            namespace=f"n{node_id}",
        )
        #: group id -> CBN subscription id of the group's source profile
        self._source_subscriptions: Dict[str, str] = {}
        #: result streams this processor has advertised
        self._advertised: Set[str] = set()

    @property
    def is_processor(self) -> bool:
        return True

    @property
    def query_count(self) -> int:
        return self.manager.grouping.query_count

    @property
    def group_count(self) -> int:
        """Merged query groups on this processor — the load-management
        layer's unit of placement and migration."""
        return self.manager.grouping.group_count

    # -- query layer ---------------------------------------------------------------

    def accept(self, query: ContinuousQuery, name: Optional[str] = None) -> Submission:
        """Accept a user query and reconcile CBN subscriptions.

        The query travels through the query wrapper (as it would to a
        foreign SPE), the manager groups and registers it, and the
        processor's source subscription for the affected group is
        replaced if the representative changed.
        """
        wrapped = self.query_wrapper.to_engine(query)
        unwrapped = self.query_wrapper.from_engine(wrapped)
        if unwrapped.name is None and query.name is not None:
            unwrapped = ContinuousQuery(
                unwrapped.select_items,
                unwrapped.streams,
                unwrapped.predicate,
                unwrapped.group_by,
                query.name,
            )
        submission = self.manager.submit(unwrapped, name=name)
        if self.network is not None:
            self._subscribe_sources(submission)
            self._advertise_result(submission)
        return submission

    def withdraw(self, query_name: str) -> Optional["QueryGroup"]:
        """Remove a query; returns the recomposed group (or ``None``).

        The group's source subscription is replaced (or dropped with
        the group).  Callers holding *result* subscriptions for the
        surviving members must refresh them from
        ``manager.result_profiles_of(group)`` — the representative
        narrowed and the old profiles may reference attributes the
        result stream no longer carries.
        """
        group = self.manager.withdraw(query_name)
        if self.network is None:
            return group
        if group is None:
            # Group vanished: drop its source subscription.
            for group_id, sub_id in list(self._source_subscriptions.items()):
                if not any(
                    g.group_id == group_id for g in self.manager.groups
                ):
                    self.network.unsubscribe(sub_id)
                    del self._source_subscriptions[group_id]
            return None
        from repro.core.profiles import source_profile as _source_profile

        profile = _source_profile(
            group.representative, self.catalog, subscriber=group.group_id
        )
        self._replace_source_subscription(group.group_id, profile)
        return group

    def release_group(self, group_id: str) -> List[ContinuousQuery]:
        """Tear a whole group off this processor for live migration.

        The manager deregisters the representative from the SPE and
        hands back the intact member list; the group's CBN source
        subscription is withdrawn (the target installs its own when it
        re-accepts the members).  The result-stream advertisement is
        left in place — advertisements are idempotent registrations and
        the stream simply goes quiet with no publisher behind it.
        """
        members = self.manager.release_group(group_id)
        if self.network is not None:
            sub_id = self._source_subscriptions.pop(group_id, None)
            if sub_id is not None:
                self.network.unsubscribe(sub_id)
        return members

    def _subscribe_sources(self, submission: Submission) -> None:
        self._replace_source_subscription(
            submission.group.group_id, submission.source_profile
        )

    def _replace_source_subscription(self, group_id: str, profile) -> None:
        assert self.network is not None
        old = self._source_subscriptions.pop(group_id, None)
        if old is not None:
            self.network.unsubscribe(old)
        sub_id = self.network.subscribe(
            profile, self.node_id, subscription_id=f"src:{self.node_id}:{group_id}:{self.manager.grouping.query_count}"
        )
        self._source_subscriptions[group_id] = sub_id

    def _advertise_result(self, submission: Submission) -> None:
        assert self.network is not None
        if submission.result_stream not in self._advertised:
            self.network.advertise(
                submission.result_stream, self.node_id, submission.result_schema
            )
            self._advertised.add(submission.result_stream)
        else:
            # Representative changed: refresh the result schema.
            self.network.catalog.register(submission.result_schema)

    # -- data layer callbacks ----------------------------------------------------------

    def on_source_data(
        self, datagram: Datagram, group_id: Optional[str] = None
    ) -> List[Datagram]:
        """Feed one delivered source datagram through the SPE.

        ``group_id`` names the query group whose subscription the
        delivery belongs to; the datagram carries that group's early
        projection and must only reach that group's representative.
        Without a group id the datagram is broadcast to every query on
        its stream (standalone-processor usage).

        Returns the result datagrams (already tagged with their result
        stream names), which the caller publishes into the CBN from
        this node.
        """
        engine_tuple = self.data_wrapper.to_engine(datagram)
        native = self.data_wrapper.from_engine(engine_tuple)
        if group_id is not None:
            engine_name = self.manager.engine_name_of(group_id)
            if engine_name is None:
                return []
            results = self.spe.push_to(engine_name, native)
        else:
            results = self.spe.push(native)
        return [result.datagram for result in results]
