"""Whole-system simulation of COSMOS (sections 2 and 5).

Puts the layers together: brokers and processors
(:mod:`repro.system.node`) on an overlay tree, a query distribution
service (:mod:`repro.system.distribution`), the end-to-end facade
(:mod:`repro.system.cosmos`), an analytic model of shared vs non-shared
result delivery (:mod:`repro.system.delivery`, Figure 3), two-layer
fault tolerance (:mod:`repro.system.fault`) and a small discrete-event
simulator (:mod:`repro.system.events`), plus the self-healing
reliability layer (:mod:`repro.system.reliability`): sequenced uplinks,
heartbeat failure detection, and degraded-mode quarantine.
"""

from __future__ import annotations

from repro.system.cosmos import CosmosSystem, QueryStatus, SubmittedQuery
from repro.system.delivery import DeliveryCostModel, GroupPlacement
from repro.system.distribution import (
    LeastLoadedDistribution,
    ProximityDistribution,
    QueryDistribution,
    RoundRobinDistribution,
    StreamAffinityDistribution,
)
from repro.system.events import EventSimulator
from repro.system.feeds import LiveFeedRunner, ScheduledSource
from repro.system.monitor import SystemMonitor
from repro.system.node import Broker, Processor
from repro.system.reliability import (
    FailureDetector,
    ReliabilityCounters,
    ReliabilityParams,
    ReliabilityState,
    SequencedUplink,
    UplinkReceiver,
    attach_reliability,
    heal_partition,
    quarantine_partitioned,
)
from repro.system.tuning import reorganize_overlay, traffic_demands

__all__ = [
    "Broker",
    "CosmosSystem",
    "DeliveryCostModel",
    "EventSimulator",
    "FailureDetector",
    "GroupPlacement",
    "LeastLoadedDistribution",
    "LiveFeedRunner",
    "Processor",
    "ProximityDistribution",
    "QueryDistribution",
    "QueryStatus",
    "ReliabilityCounters",
    "ReliabilityParams",
    "ReliabilityState",
    "RoundRobinDistribution",
    "ScheduledSource",
    "SequencedUplink",
    "StreamAffinityDistribution",
    "SubmittedQuery",
    "SystemMonitor",
    "UplinkReceiver",
    "attach_reliability",
    "heal_partition",
    "quarantine_partitioned",
    "reorganize_overlay",
    "traffic_demands",
]
