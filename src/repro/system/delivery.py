"""Analytic model of shared vs non-shared result delivery.

This is the communication-cost model behind Figure 3 and the benefit
ratio of Figure 4(a):

* **Non-shared** delivery transmits each member query's result stream
  separately from its processor to its user along the tree path, so a
  link shared by two members carries both streams (Figure 3(a)).
* **Shared** delivery transmits the group's representative result
  stream once along the union of those paths; the CBN re-tightens at
  branch points, so a link with exactly one member downstream carries
  only that member's own stream again, while links feeding several
  members carry the representative stream (Figure 3(b)).

Costs are ``rate x link weight`` summed over links; rates come from the
:class:`~repro.core.cost.CostModel` estimates, exactly the quantities
the paper's benefit formula ``sum_i C(q_i) - C(q)`` is defined over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cbn.datagram import Datagram
from repro.cbn.network import ContentBasedNetwork
from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog
from repro.core.cost import CostModel
from repro.core.grouping import QueryGroup
from repro.core.profiles import result_profile
from repro.overlay.metrics import LinkStats
from repro.overlay.topology import Edge, NodeId
from repro.overlay.tree import DisseminationTree


@dataclass
class GroupPlacement:
    """Where one query group lives on the tree.

    ``member_nodes`` maps member query names to the user nodes that
    must receive their results; the processor executes the group's
    representative.
    """

    group: QueryGroup
    processor_node: NodeId
    member_nodes: Dict[str, NodeId]


class DeliveryCostModel:
    """Computes shared / non-shared delivery costs for placed groups."""

    def __init__(
        self,
        tree: DisseminationTree,
        catalog: Catalog,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self._tree = tree
        self._catalog = catalog
        self._cost = cost_model or CostModel()

    # -- per-group ------------------------------------------------------------

    def unshared_cost(self, placement: GroupPlacement) -> float:
        """Every member's own stream unicast separately (Figure 3(a))."""
        total = 0.0
        for member in placement.group.members:
            user = placement.member_nodes[member.name]
            rate = self._cost.result_rate(member, self._catalog)
            total += rate * self._tree.path_weight(placement.processor_node, user)
        return total

    def shared_cost(self, placement: GroupPlacement) -> float:
        """Representative multicast with CBN re-tightening (Figure 3(b)).

        Each link of the union of processor->user paths carries:

        * the single downstream member's own stream, when exactly one
          member lies behind the link (fully re-tightened);
        * the representative stream otherwise (the re-tightened union of
          several members is approximated by the full representative,
          an upper bound that keeps the sweep tractable).
        """
        group = placement.group
        member_rates = {
            member.name: self._cost.result_rate(member, self._catalog)
            for member in group.members
        }
        rep_rate = self._cost.result_rate(group.representative, self._catalog)
        edge_members: Dict[Edge, List[str]] = {}
        for member in group.members:
            user = placement.member_nodes[member.name]
            for edge in self._tree.path_edges(placement.processor_node, user):
                edge_members.setdefault(edge, []).append(member.name)
        total = 0.0
        for edge, names in edge_members.items():
            weight = self._tree.weight(*edge)
            if len(names) == 1:
                total += member_rates[names[0]] * weight
            else:
                total += min(rep_rate, sum(member_rates[n] for n in names)) * weight
        return total

    # -- sweeps -------------------------------------------------------------------

    def costs(
        self, placements: Sequence[GroupPlacement]
    ) -> Tuple[float, float]:
        """(non-shared, shared) total costs over all placed groups."""
        unshared = sum(self.unshared_cost(p) for p in placements)
        shared = sum(self.shared_cost(p) for p in placements)
        return unshared, shared

    def benefit_ratio(self, placements: Sequence[GroupPlacement]) -> float:
        """Fraction of communication cost removed by merging (Fig 4(a))."""
        unshared, shared = self.costs(placements)
        if unshared == 0:
            return 0.0
        return (unshared - shared) / unshared


# -- measured counterpart ------------------------------------------------------


@dataclass
class MeasuredDelivery:
    """Outcome of replaying a result feed through a real CBN."""

    #: Per-link data traffic of the shared delivery.
    stats: LinkStats
    #: Member query name -> datagrams actually delivered to its user.
    delivered: Dict[str, int]


def measure_shared_delivery(
    placement: GroupPlacement,
    tree: DisseminationTree,
    catalog: Catalog,
    feed: Sequence[Datagram],
    result_stream: str,
) -> MeasuredDelivery:
    """Measure shared delivery by actually routing a result feed.

    The analytic :meth:`DeliveryCostModel.shared_cost` approximates
    links with several members downstream by the full representative
    stream; this helper builds a throwaway
    :class:`~repro.cbn.network.ContentBasedNetwork` on the same tree,
    subscribes each member's re-tightening profile at its user node,
    and replays ``feed`` (datagrams of ``result_stream`` injected at
    the processor) with the batched
    :meth:`~repro.cbn.network.ContentBasedNetwork.publish_many`, so
    tests and benchmarks can check the approximation against measured
    per-link bytes.
    """
    network = ContentBasedNetwork(tree, catalog)
    network.advertise(result_stream, placement.processor_node)
    group = placement.group
    for member in group.members:
        profile = result_profile(
            member,
            group.representative,
            catalog,
            result_stream,
            subscriber=member.name,
        )
        network.subscribe(
            profile,
            placement.member_nodes[member.name],
            subscription_id=f"member:{member.name}",
        )
    delivered = {member.name: 0 for member in group.members}
    for deliveries in network.publish_many(feed, placement.processor_node):
        for delivery in deliveries:
            delivered[delivery.subscription_id.split(":", 1)[1]] += 1
    return MeasuredDelivery(network.data_stats, delivered)
