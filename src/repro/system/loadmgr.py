"""Adaptive load management: hotspots, placement, live migration.

The paper's load management service (section 2) both *distributes* a
new query to a processor and *re*-distributes running work when the
load landscape shifts.  Submission-time placement lives in
:mod:`repro.system.distribution`; this module adds the runtime half:

* **Hotspot detection** — :class:`HotspotDetector` turns
  :meth:`~repro.system.monitor.SystemMonitor.processor_loads` snapshots
  into threshold-crossing overload events with hysteresis (a processor
  must fall back below a lower clear ratio before it can trigger
  again), so a load hovering at the threshold cannot flap.
* **Cost-driven placement** — :func:`placement_cost` prices hosting one
  *whole merged query group* on a candidate processor (representative
  source flow in, per-member result flow out, both weighted by tree
  path length — the allocation model of Benoit et al.), and
  :func:`choose_target` picks the cheapest candidate.  The unit of
  migration is the group, never a member, so grouping opportunities
  are preserved by construction.
* **Live migration** — :class:`GroupMigration` is the per-move state
  machine (``PREPARING -> DRAINING -> CUTOVER -> COMPLETED``, with
  ``ABORTED`` reachable from every non-terminal state).  The group is
  quarantined through the same ``DEGRADED`` lifecycle the partition
  path uses (:func:`quarantine_for_migration`), its state is handed
  off over a dedicated sequenced uplink (:class:`MigrationChannel`,
  reusing :class:`~repro.system.reliability.SequencedUplink` /
  :class:`~repro.system.reliability.UplinkReceiver`); the channel's
  gap-closing punctuation (:meth:`MigrationChannel.close`) marks the
  cutover point, after which :func:`cutover_group` re-registers the
  members on the target and :func:`resume_after_migration` heals them
  back to ``ACTIVE``.  Retry/abort policy (capped exponential backoff
  towards a possibly-crashed target, abort-to-source) is the caller's
  job — the chaos executor in :mod:`repro.sim.network` drives it over
  the event simulator, deterministically.

:func:`attach_load_manager` hangs a shared :class:`LoadState` on a
:class:`~repro.system.cosmos.CosmosSystem` the same way
:func:`~repro.system.reliability.attach_reliability` does; the monitor's
``health()`` picks the counters up from there.  Migration deliberately
keeps its own counters (:class:`LoadCounters`) — the reliability
counters are conformance-checked *exactly* against chaos traces and
must not absorb migration traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.grouping import QueryGroup
from repro.overlay.topology import NodeId
from repro.system.cosmos import CosmosSystem, QueryStatus
from repro.system.reliability import (
    ReliabilityCounters,
    ReliabilityParams,
    SequencedUplink,
    UplinkReceiver,
)


class LoadManagementError(Exception):
    """Raised for invalid migration protocol transitions or targets."""


# ---------------------------------------------------------------------------
# parameters and counters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LoadParams:
    """Tunables of the load-management layer.

    The detector ratios compare one processor's merged representative
    output rate against the mean across live processors; hysteresis
    (``overload_ratio`` to trigger, ``clear_ratio`` to re-arm) keeps a
    load hovering at the threshold from flapping.  The migration delays
    are sized well under the chaos harness's heartbeat lease, so a
    migration triggered before a crash is detected still resolves
    (complete or abort) before the repair path re-homes the group.
    """

    #: merged_rate / mean ratio at which a processor becomes hot.
    overload_ratio: float = 1.25
    #: Ratio the processor must fall below before it can re-trigger.
    clear_ratio: float = 1.05
    #: Seconds between migration start (quarantine) and the state drain.
    prepare_delay: float = 2.0
    #: Seconds between the state drain and the cutover attempt.
    drain_delay: float = 3.0
    #: Delay before the first cutover retry when the target is dead.
    migrate_backoff: float = 4.0
    #: Multiplier applied to the retry delay after each failed attempt.
    migrate_backoff_base: float = 2.0
    #: Ceiling on the retry delay (capped exponential backoff).
    migrate_cap: float = 32.0
    #: Cutover attempts before the migration aborts back to the source.
    max_migrate_attempts: int = 3


@dataclass
class LoadCounters:
    """Aggregate load-management activity, exposed via ``health()``.

    Deliberately separate from
    :class:`~repro.system.reliability.ReliabilityCounters`: those are
    cross-checked *exactly* against chaos traces by the conformance
    checker, so migration traffic gets its own ledger (cross-checked
    exactly against the migration trace records instead).
    """

    hotspots_detected: int = 0
    migrations_started: int = 0
    migrations_completed: int = 0
    migrations_aborted: int = 0
    migrations_retried: int = 0
    state_chunks_sent: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hotspots_detected": self.hotspots_detected,
            "migrations_started": self.migrations_started,
            "migrations_completed": self.migrations_completed,
            "migrations_aborted": self.migrations_aborted,
            "migrations_retried": self.migrations_retried,
            "state_chunks_sent": self.state_chunks_sent,
        }


# ---------------------------------------------------------------------------
# hotspot detection
# ---------------------------------------------------------------------------


class HotspotDetector:
    """Threshold-crossing overload detection with hysteresis.

    Feed it :class:`~repro.system.monitor.ProcessorLoad` snapshots;
    :meth:`observe` returns the processors that *newly* crossed the
    overload ratio this observation.  A processor already flagged hot
    stays latched (and is not re-reported) until its ratio falls below
    ``clear_ratio``; single-processor deployments are never hot (there
    is nowhere to shed load to).
    """

    def __init__(self, params: Optional[LoadParams] = None) -> None:
        self.params = params or LoadParams()
        self._hot: Set[NodeId] = set()

    @property
    def hot(self) -> List[NodeId]:
        """Currently latched hot processors (sorted)."""
        return sorted(self._hot)

    def observe(self, loads: Sequence) -> List[NodeId]:
        """Ingest one load snapshot; returns newly hot processors."""
        if len(loads) < 2:
            self._hot.clear()
            return []
        mean = sum(load.merged_rate for load in loads) / len(loads)
        if mean <= 0.0:
            self._hot.clear()
            return []
        present = {load.node_id for load in loads}
        self._hot &= present
        newly: List[NodeId] = []
        for load in sorted(loads, key=lambda l: l.node_id):
            ratio = load.merged_rate / mean
            if load.node_id in self._hot:
                if ratio < self.params.clear_ratio:
                    self._hot.discard(load.node_id)
                continue
            if ratio >= self.params.overload_ratio:
                self._hot.add(load.node_id)
                newly.append(load.node_id)
        return newly


# ---------------------------------------------------------------------------
# cost-driven placement
# ---------------------------------------------------------------------------


def placement_cost(
    system: CosmosSystem, group: QueryGroup, node: NodeId
) -> float:
    """Estimated communication cost of hosting ``group`` on ``node``.

    The group's representative pulls each source stream once (the
    shared inbound flow), and every member pushes its own result rate
    to its user — rate times tree path weight, the same pricing
    :class:`~repro.system.distribution.CostAwareDistribution` uses per
    query, lifted to the merged group so placement and migration agree
    on the unit of work.
    """
    catalog = system.catalog
    cost_model = system.cost_model
    representative = group.representative.canonical(catalog)
    total = 0.0
    for ref in representative.streams:
        source = system._sources.get(ref.stream)
        if source is None:
            continue
        rate = cost_model.source_flow_rate(representative, ref.stream, catalog)
        total += rate * system.tree.path_weight(source, node)
    for member in group.members:
        handle = system._queries.get(member.name)
        if handle is None:
            continue
        result_rate = cost_model.result_rate(
            member.canonical(catalog), catalog
        )
        total += result_rate * system.tree.path_weight(node, handle.user_node)
    return total


def choose_target(
    system: CosmosSystem, group: QueryGroup, exclude: Set[NodeId]
) -> Optional[NodeId]:
    """The cheapest live processor to move ``group`` to, or ``None``.

    ``exclude`` lists processors that cannot receive the group (the
    source itself, plus anything the caller knows to be crashed).
    """
    candidates = [
        node for node in sorted(system.processors) if node not in exclude
    ]
    if not candidates:
        return None
    return min(
        candidates,
        key=lambda node: (placement_cost(system, group, node), node),
    )


# ---------------------------------------------------------------------------
# the migration state machine
# ---------------------------------------------------------------------------


class MigrationState(enum.Enum):
    """Lifecycle of one live group migration.

    ``PREPARING`` — group quarantined at the source, waiting for the
    drain.  ``DRAINING`` — state chunks in flight over the migration
    channel.  ``CUTOVER`` — channel punctuation closed gap-free; the
    group is being re-registered on the target.  ``COMPLETED`` and
    ``ABORTED`` are terminal.
    """

    PREPARING = "preparing"
    DRAINING = "draining"
    CUTOVER = "cutover"
    COMPLETED = "completed"
    ABORTED = "aborted"


@dataclass
class GroupMigration:
    """One in-flight migration of a whole merged query group."""

    migration_id: str
    group_id: str
    source_node: NodeId
    target_node: NodeId
    #: Member query ids quarantined by this migration (the ones the
    #: protocol owns and must resume, at the target on completion or
    #: back at the source on abort).
    members: List[str] = field(default_factory=list)
    state: MigrationState = MigrationState.PREPARING
    channel: Optional["MigrationChannel"] = None
    chunks_sent: int = 0

    def start_drain(self) -> None:
        """PREPARING -> DRAINING: the state handoff began."""
        if self.state is not MigrationState.PREPARING:
            raise LoadManagementError(
                f"cannot drain migration {self.migration_id} from {self.state.name}"
            )
        self.state = MigrationState.DRAINING

    def cut_over(self) -> None:
        """DRAINING -> CUTOVER: the channel closed gap-free."""
        if self.state is not MigrationState.DRAINING:
            raise LoadManagementError(
                f"cannot cut over migration {self.migration_id} from {self.state.name}"
            )
        self.state = MigrationState.CUTOVER

    def complete(self) -> None:
        """CUTOVER -> COMPLETED: the group runs on the target."""
        if self.state is not MigrationState.CUTOVER:
            raise LoadManagementError(
                f"cannot complete migration {self.migration_id} from {self.state.name}"
            )
        self.state = MigrationState.COMPLETED

    def abort(self) -> None:
        """Any non-terminal state -> ABORTED."""
        if self.state in (MigrationState.COMPLETED, MigrationState.ABORTED):
            raise LoadManagementError(
                f"cannot abort migration {self.migration_id} from {self.state.name}"
            )
        self.state = MigrationState.ABORTED

    @property
    def key(self) -> str:
        """The in-flight registry key: one live move per (group, source)."""
        return f"{self.group_id}@n{self.source_node}"


class MigrationChannel:
    """The state-handoff transport of one migration.

    A dedicated :class:`~repro.system.reliability.SequencedUplink` /
    :class:`~repro.system.reliability.UplinkReceiver` pair (own counters
    — migration traffic must not pollute the exactly-conformance-checked
    reliability ledger) carries the group's state chunks source to
    target.  :meth:`close` is the gap-closing punctuation of PR 4's
    protocol: it announces the top sequence number and returns any
    still-open gaps — an empty list *is* the cutover barrier.
    """

    def __init__(self, params: Optional[ReliabilityParams] = None) -> None:
        self.uplink = SequencedUplink()
        self.receiver = UplinkReceiver(
            params or ReliabilityParams(), ReliabilityCounters()
        )

    def send(self, chunk: Dict[str, object], now: float) -> int:
        """Stamp and offer one state chunk; returns tuples released."""
        seq = self.uplink.stamp(dict(chunk), now)
        offer = self.receiver.offer(seq, dict(chunk), now)
        return len(offer.released)

    def close(self, now: float) -> List[int]:
        """Punctuate the channel; returns the still-open gaps.

        An empty return means every chunk was released in sequence —
        the target holds the complete state and cutover may proceed.
        """
        top = self.uplink.next_seq - 1
        if top < 0:
            return []
        self.receiver.announce(top)
        # The punctuation reports *fresh* gaps only; a mid-stream gap
        # already flagged by a later arrival is no less open.  The
        # barrier must certify the full outstanding set.
        return self.receiver.open_gaps

    @property
    def transferred(self) -> int:
        """Chunks released to the target so far."""
        return self.receiver.expected


# ---------------------------------------------------------------------------
# migration mechanics over a CosmosSystem
# ---------------------------------------------------------------------------


def capture_group_state(
    system: CosmosSystem, node: NodeId, group_id: str
) -> List[Dict[str, object]]:
    """Serialise a group's handoff state into ordered chunks.

    One header chunk (group identity, membership size, SPE engine name)
    followed by one chunk per member (name and accumulated result
    count).  Returns ``[]`` when the group is gone — the caller treats
    that as a superseded migration.
    """
    processor = system.processors.get(node)
    if processor is None:
        return []
    group = next(
        (g for g in processor.manager.groups if g.group_id == group_id), None
    )
    if group is None:
        return []
    chunks: List[Dict[str, object]] = [
        {
            "kind": "header",
            "group": group_id,
            "members": len(group.members),
            "engine": processor.manager.engine_name_of(group_id) or "-",
        }
    ]
    for member in group.members:
        handle = system._queries.get(member.name)
        chunks.append(
            {
                "kind": "member",
                "name": member.name,
                "results": handle.result_count if handle is not None else 0,
            }
        )
    return chunks


def quarantine_for_migration(
    system: CosmosSystem, source_node: NodeId, group_id: str
) -> List[str]:
    """Quarantine every active member of ``group_id`` for a move.

    Same lifecycle as the partition path: the user subscription is
    withdrawn and the handle flips to ``DEGRADED`` — results stop
    flowing while the group is in motion, but the handle (and its
    accumulated results) survives.  Members already degraded (e.g.
    partition-quarantined) are left to their owner.  Returns the
    quarantined query ids in group-member order.
    """
    processor = system.processors.get(source_node)
    if processor is None:
        raise LoadManagementError(f"no processor on node {source_node}")
    group = next(
        (g for g in processor.manager.groups if g.group_id == group_id), None
    )
    if group is None:
        raise LoadManagementError(
            f"no group {group_id!r} on processor {source_node}"
        )
    quarantined: List[str] = []
    for member in group.members:
        handle = system._queries.get(member.name)
        if handle is None:
            continue
        if handle.status is not QueryStatus.ACTIVE:
            continue
        sub_id = system._user_subscriptions.pop(member.name, None)
        if sub_id is not None:
            system.network.unsubscribe(sub_id)
        handle.status = QueryStatus.DEGRADED
        quarantined.append(member.name)
    return quarantined


def resume_after_migration(
    system: CosmosSystem, processor_node: NodeId, members: Sequence[str]
) -> List[str]:
    """Heal migration-quarantined ``members`` on ``processor_node``.

    Used both for completion (resume at the target) and abort (resume
    back at the source).  Each member's handle is re-pointed at the
    processor's current group for it and re-subscribed; members that
    vanished, are not ``DEGRADED``, are owned by the reliability
    partition quarantine, or whose user node left the tree are left
    untouched (their owning path heals them).  Returns the resumed ids
    in ``members`` order.
    """
    processor = system.processors.get(processor_node)
    if processor is None:
        raise LoadManagementError(f"no processor on node {processor_node}")
    reliability = system.reliability
    resumed: List[str] = []
    for member_name in members:
        handle = system._queries.get(member_name)
        if handle is None:
            continue
        group = processor.manager.grouping.group_of(member_name)
        if group is None:
            continue
        handle.processor_node = processor_node
        handle.result_stream = processor.manager._result_stream_of(group)
        if handle.status is not QueryStatus.DEGRADED:
            continue
        if reliability is not None and member_name in reliability.quarantined:
            continue
        if handle.user_node not in system.tree:
            continue
        profile = processor.manager.result_profiles_of(group)[member_name]
        sub_id = system.network.subscribe(
            profile,
            handle.user_node,
            subscription_id=f"user:{member_name}:v{next(system._sub_version)}",
        )
        system._user_subscriptions[member_name] = sub_id
        handle.status = QueryStatus.ACTIVE
        resumed.append(member_name)
    return resumed


def cutover_group(
    system: CosmosSystem, migration: GroupMigration
) -> List[str]:
    """Re-home the migrating group onto the target and heal members.

    The whole group is torn off the source (SPE deregistration, source
    subscription withdrawal, intact member list) and re-accepted member
    by member on the target *in group order*, so the target's grouping
    optimizer reproduces the merge (or folds the members into an
    existing compatible group — merging never decreases).  Resident
    active members of any touched target group get their result
    subscriptions refreshed (their representative changed), then the
    migrated members are resumed.  Returns the resumed ids.
    """
    source = system.processors.get(migration.source_node)
    target = system.processors.get(migration.target_node)
    if source is None or target is None:
        raise LoadManagementError(
            f"migration {migration.migration_id} endpoints missing "
            f"(n{migration.source_node} -> n{migration.target_node})"
        )
    queries = source.release_group(migration.group_id)
    moved = {query.name for query in queries}
    touched: List[str] = []
    for query in queries:
        submission = target.accept(query)
        if submission.group.group_id not in touched:
            touched.append(submission.group.group_id)
    for group_id in touched:
        group = next(
            g for g in target.manager.groups if g.group_id == group_id
        )
        profiles = target.manager.result_profiles_of(group)
        resident = {
            name: profile
            for name, profile in profiles.items()
            if name not in moved
            and name in system._queries
            and system._queries[name].status is QueryStatus.ACTIVE
        }
        if resident:
            system._refresh_result_subscriptions(
                resident, target.manager._result_stream_of(group)
            )
    return resume_after_migration(
        system, migration.target_node, [query.name for query in queries]
    )


# ---------------------------------------------------------------------------
# shared state
# ---------------------------------------------------------------------------


@dataclass
class LoadState:
    """Everything the load manager knows about one deployment.

    Like :class:`~repro.system.reliability.ReliabilityState`, one state
    object is deliberately shareable between chaos twins: detection and
    placement decisions are made once and applied to both, so the
    twins cannot diverge on load-management nondeterminism.
    """

    params: LoadParams = field(default_factory=LoadParams)
    counters: LoadCounters = field(default_factory=LoadCounters)
    detector: HotspotDetector = field(default=None)  # type: ignore[assignment]
    #: in-flight migrations, keyed by ``GroupMigration.key``
    active: Dict[str, GroupMigration] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = HotspotDetector(self.params)


def attach_load_manager(
    system: CosmosSystem,
    params: Optional[LoadParams] = None,
    state: Optional[LoadState] = None,
) -> LoadState:
    """Attach (or share) a load-management state on ``system``.

    Pass an existing ``state`` to share one brain between twin systems;
    otherwise a fresh state is created from ``params``.
    """
    if state is None:
        state = LoadState(params=params or LoadParams())
    system.load = state
    return state
