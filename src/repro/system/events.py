"""A minimal discrete-event simulator.

Source streams in the examples are replayed through this simulator so
arrivals interleave in global timestamp order — the ordering contract
of the SPE.  Events at equal times fire in scheduling order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised when scheduling into the past."""


class EventSimulator:
    """Priority-queue discrete-event loop."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending(self) -> int:
        return len(self._queue)

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), action))

    def schedule_in(self, delay: float, action: Callable[[], None]) -> None:
        self.schedule(self._now + delay, action)

    def step(self) -> Optional[float]:
        """Process exactly one event; returns its time (``None`` if idle).

        The clock advances to the fired event's time.  This is the
        single-event API the chaos replayer uses to interleave its own
        bookkeeping (trace records, oracle snapshots) between events
        without giving up the simulator's global time ordering.
        """
        if not self._queue:
            return None
        time, __, action = heapq.heappop(self._queue)
        self._now = time
        action()
        return time

    def run(self, until: Optional[float] = None) -> int:
        """Process events (up to ``until``, inclusive); returns the count.

        Clock semantics: after the call, ``now`` is the time of the last
        processed event — except that when ``until`` is given and lies
        *ahead* of that time, the clock advances to ``until`` even if no
        event fired there (simulated time passed idly).  An ``until`` in
        the past (``until < now``) processes nothing that would rewind
        the clock and leaves ``now`` unchanged: the clock is monotone.
        """
        processed = 0
        while self._queue:
            time, __, action = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            self._now = time
            action()
            processed += 1
        if until is not None and until > self._now:
            self._now = until
        return processed
