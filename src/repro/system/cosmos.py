"""The COSMOS system facade (Figure 1).

Wires sources, brokers, processors, the CBN and the query layer into
one object:

* :meth:`CosmosSystem.add_source` registers a source stream at a node
  (schema advertisement + catalog registration);
* :meth:`CosmosSystem.submit` accepts a user query (CQL text or AST) at
  a user's broker, distributes it to a processor, and installs all the
  subscriptions the query layer composed;
* :meth:`CosmosSystem.publish` injects one source tuple and drives it
  end to end: CBN routing to processors, SPE evaluation, result-stream
  publication, CBN routing to users.

Every delivered result is collected on the :class:`SubmittedQuery`
handle, and all traffic is accounted on the network's
:class:`~repro.overlay.metrics.LinkStats`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cbn.datagram import Datagram
from repro.cbn.network import ContentBasedNetwork, Delivery
from repro.cql.ast import ContinuousQuery
from repro.cql.parser import parse_query
from repro.cql.schema import Catalog, StreamSchema
from repro.core.cost import CostModel
from repro.core.grouping import GroupingOptimizer
from repro.overlay.topology import NodeId, Topology
from repro.overlay.tree import DisseminationTree
from repro.system.distribution import (
    QueryDistribution,
    StreamAffinityDistribution,
)
from repro.system.node import Broker, Processor


class SystemError_(Exception):
    """Raised for invalid system operations (unknown streams/nodes)."""


class QueryStatus(enum.Enum):
    """Lifecycle state of a submitted query.

    ``ACTIVE`` queries are installed end to end.  ``DEGRADED`` queries
    have been quarantined by the reliability layer because a physical
    partition made some of their nodes unreachable; their handles (and
    accumulated results) survive, but no subscriptions are installed
    until :func:`repro.system.reliability.heal_partition` resumes them.
    """

    ACTIVE = "active"
    DEGRADED = "degraded"


@dataclass
class SubmittedQuery:
    """Handle for one user query living in the system."""

    query_id: str
    query: ContinuousQuery
    user_node: NodeId
    processor_node: NodeId
    result_stream: str
    results: List[Datagram] = field(default_factory=list)
    status: QueryStatus = QueryStatus.ACTIVE

    @property
    def result_count(self) -> int:
        return len(self.results)


class CosmosSystem:
    """A simulated COSMOS deployment.

    Parameters
    ----------
    tree:
        The overlay dissemination tree (all nodes are at least brokers).
    processor_nodes:
        Which nodes are equipped with an SPE.
    topology:
        Optional underlying physical topology; required only by the
        fault-tolerance repair logic (:mod:`repro.system.fault`).
    distribution:
        Query distribution policy; defaults to stream-set affinity.
    merging:
        When ``False``, every query forms its own group (the non-share
        baseline of Figure 3) — implemented by an infinite merge
        threshold on each processor's grouping optimizer.
    per_source_trees:
        Build a dedicated shortest-path dissemination tree rooted at
        each source's node (the paper's "multiple overlay dissemination
        trees"); requires ``topology``.  Result streams stay on the
        default tree.
    static_check:
        Run the static analyzer (schema + satisfiability families) on
        every submitted query and reject submissions with errors by
        raising :class:`SystemError_` before anything is installed.
    fast_path:
        Route publications through the CBN's indexed fast path
        (default); ``False`` keeps the naive reference path for
        equivalence checks and before/after measurements.
    """

    def __init__(
        self,
        tree: DisseminationTree,
        processor_nodes: Sequence[NodeId],
        topology: Optional[Topology] = None,
        distribution: Optional[QueryDistribution] = None,
        cost_model: Optional[CostModel] = None,
        merging: bool = True,
        use_subsumption: bool = False,
        per_source_trees: bool = False,
        static_check: bool = False,
        fast_path: bool = True,
    ) -> None:
        if per_source_trees and topology is None:
            raise SystemError_("per_source_trees requires the topology")
        self.per_source_trees = per_source_trees
        self.static_check = static_check
        self.tree = tree
        self.topology = topology
        self.catalog = Catalog()
        self.cost_model = cost_model or CostModel()
        self.merging = merging
        self.network = ContentBasedNetwork(
            tree,
            self.catalog,
            use_subsumption=use_subsumption,
            fast_path=fast_path,
        )
        self.processors: Dict[NodeId, Processor] = {}
        for node in processor_nodes:
            if node not in tree:
                raise SystemError_(f"processor node {node} not in the tree")
            self.processors[node] = self._make_processor(node)
        self.brokers: Dict[NodeId, Broker] = {
            node: Broker(node) for node in tree.nodes if node not in self.processors
        }
        self.distribution = distribution or StreamAffinityDistribution()
        self._sources: Dict[str, NodeId] = {}
        self._queries: Dict[str, SubmittedQuery] = {}
        #: query id -> current CBN subscription id for its results
        self._user_subscriptions: Dict[str, str] = {}
        self._counter = itertools.count()
        self._sub_version = itertools.count()
        #: Reliability state (:func:`repro.system.reliability.attach_reliability`);
        #: ``None`` until a supervisor attaches one.
        self.reliability = None
        #: Load-management state (:func:`repro.system.loadmgr.attach_load_manager`);
        #: ``None`` until a load manager attaches one.
        self.load = None

    def _make_processor(self, node: NodeId) -> Processor:
        threshold = 0.0 if self.merging else float("inf")
        grouping = GroupingOptimizer(
            self.catalog, self.cost_model, merge_threshold=threshold
        )
        return Processor(
            node, self.catalog, network=self.network, grouping=grouping,
            cost_model=self.cost_model,
        )

    # -- sources -----------------------------------------------------------------

    def add_source(self, schema: StreamSchema, node: NodeId) -> None:
        """Attach a source stream publishing from ``node``."""
        if node not in self.tree:
            raise SystemError_(f"source node {node} not in the tree")
        self._sources[schema.name] = node
        self.catalog.register(schema)
        if self.per_source_trees:
            assert self.topology is not None
            self.network.set_stream_tree(
                schema.name, DisseminationTree.shortest_path(self.topology, node)
            )
        self.network.advertise(schema.name, node, schema)

    def source_node(self, stream: str) -> NodeId:
        try:
            return self._sources[stream]
        except KeyError:
            raise SystemError_(f"unknown source stream {stream!r}") from None

    # -- queries ---------------------------------------------------------------------

    def submit(
        self,
        query: Union[str, ContinuousQuery],
        user_node: NodeId,
        name: Optional[str] = None,
    ) -> SubmittedQuery:
        """Submit a user query from ``user_node``; returns its handle."""
        if isinstance(query, str):
            query = parse_query(query)
        if user_node not in self.tree:
            raise SystemError_(f"user node {user_node} not in the tree")
        query_id = name or query.name or f"q{next(self._counter)}"
        if query_id in self._queries:
            raise SystemError_(f"duplicate query id {query_id!r}")
        named = ContinuousQuery(
            query.select_items,
            query.streams,
            query.predicate,
            query.group_by,
            query_id,
        )
        if self.static_check:
            from repro.analysis.checker import analyze_query

            report = analyze_query(named, self.catalog)
            if report.errors:
                raise SystemError_(
                    f"query {query_id!r} rejected by static analysis:\n"
                    + "\n".join(d.render() for d in report.errors)
                )
        processor = self.distribution.choose(
            named, user_node, sorted(self.processors.values(), key=lambda p: p.node_id)
        )
        submission = processor.accept(named)
        handle = SubmittedQuery(
            query_id=query_id,
            query=named,
            user_node=user_node,
            processor_node=processor.node_id,
            result_stream=submission.result_stream,
        )
        self._queries[query_id] = handle
        # The group's representative may have changed: refresh the result
        # subscription of every member of the group.
        self._refresh_result_subscriptions(
            submission.updated_profiles, submission.result_stream
        )
        return handle

    def withdraw(self, query_id: str) -> None:
        handle = self._queries.pop(query_id, None)
        if handle is None:
            raise SystemError_(f"unknown query {query_id!r}")
        sub_id = self._user_subscriptions.pop(query_id, None)
        if sub_id is not None:
            self.network.unsubscribe(sub_id)
        processor = self.processors[handle.processor_node]
        group = processor.withdraw(query_id)
        if group is None:
            return
        # The representative narrowed: refresh every surviving member's
        # result subscription (the old profiles may reference attributes
        # the new representative no longer outputs).
        self._refresh_result_subscriptions(
            processor.manager.result_profiles_of(group)
        )

    def _refresh_result_subscriptions(
        self,
        profiles: Dict[str, "object"],
        result_stream: Optional[str] = None,
    ) -> None:
        """Replace the result subscription of each member in ``profiles``.

        Shared by submission, withdrawal and live migration — whenever a
        group's representative changes, every member's subscription must
        be recomposed against it.  Members without a handle (standalone
        manager usage) are skipped; ``result_stream``, when given, is
        stamped on each refreshed handle.
        """
        for member_name, profile in profiles.items():
            member = self._queries.get(member_name)
            if member is None:
                continue
            old = self._user_subscriptions.pop(member_name, None)
            if old is not None:
                self.network.unsubscribe(old)
            sub_id = self.network.subscribe(
                profile,
                member.user_node,
                subscription_id=f"user:{member_name}:v{next(self._sub_version)}",
            )
            self._user_subscriptions[member_name] = sub_id
            if result_stream is not None:
                member.result_stream = result_stream

    def query(self, query_id: str) -> SubmittedQuery:
        try:
            return self._queries[query_id]
        except KeyError:
            raise SystemError_(f"unknown query {query_id!r}") from None

    @property
    def queries(self) -> List[SubmittedQuery]:
        return list(self._queries.values())

    # -- data flow ----------------------------------------------------------------------

    def publish(
        self,
        stream: str,
        payload: Dict[str, object],
        timestamp: float,
        seq: Optional[int] = None,
    ) -> List[Delivery]:
        """Inject one source tuple and drive it end to end.

        Returns every delivery made to a *user* subscription; results
        are also appended to the owning :class:`SubmittedQuery`.
        ``seq`` is the uplink transport sequence number when the tuple
        arrived over a reliable sequenced uplink; it rides the datagram
        through routing, projection and result relabelling.
        """
        node = self.source_node(stream)
        datagram = Datagram(stream, payload, timestamp, seq)
        return self._drive([datagram], node)

    def publish_batch(
        self,
        stream: str,
        tuples: Sequence[Tuple[Dict[str, object], float]],
    ) -> List[Delivery]:
        """Inject a batch of source tuples of one stream end to end.

        ``tuples`` is a sequence of ``(payload, timestamp)`` pairs.  The
        whole batch enters the CBN as one ``publish_many`` call, so the
        columnar batch plans evaluate it once per bucket.  Processors
        still see the tuples in order, and every query handle
        accumulates exactly the results sequential :meth:`publish`
        calls would produce; only the interleaving of the returned flat
        delivery list may differ (grouped per routing batch rather than
        per source tuple).
        """
        node = self.source_node(stream)
        batch = [
            Datagram(stream, payload, timestamp)
            for payload, timestamp in tuples
        ]
        if not batch:
            return []
        return self._drive(batch, node)

    def _drive(self, batch: List[Datagram], node: NodeId) -> List[Delivery]:
        """Route a source batch end to end: CBN to processors, SPE
        evaluation, result publication, CBN to users."""
        user_deliveries: List[Delivery] = []
        # Each pending item is a batch of datagrams injected at one
        # broker: the source tuples first, then whole result batches
        # from each SPE evaluation, published via publish_many so the
        # per-stream routing setup is paid once per batch.
        pending: List[tuple] = [(batch, node)]
        while pending:
            batch, origin = pending.pop(0)
            for deliveries in self.network.publish_many(batch, origin):
                for delivery in deliveries:
                    sid = delivery.subscription_id
                    if sid.startswith("src:"):
                        processor = self.processors.get(delivery.node)
                        if processor is None:
                            continue
                        group_id = sid.split(":")[2]
                        results = processor.on_source_data(
                            delivery.datagram, group_id
                        )
                        if results:
                            pending.append((results, processor.node_id))
                    elif sid.startswith("user:"):
                        query_id = sid.split(":", 2)[1]
                        handle = self._queries.get(query_id)
                        if handle is not None:
                            handle.results.append(delivery.datagram)
                        user_deliveries.append(delivery)
        return user_deliveries

    def replay(self, feed: Sequence[Datagram]) -> int:
        """Publish a timestamp-ordered feed; returns total user deliveries."""
        total = 0
        for datagram in feed:
            total += len(
                self.publish(datagram.stream, dict(datagram.payload), datagram.timestamp)
            )
        return total

    # -- reporting --------------------------------------------------------------------------

    def data_cost(self) -> float:
        """Delay-weighted bytes moved by the data layer so far."""
        return self.network.data_stats.weighted_cost()

    def grouping_summary(self) -> Dict[str, float]:
        """Aggregate grouping statistics across all processors."""
        queries = sum(p.manager.grouping.query_count for p in self.processors.values())
        groups = sum(p.manager.grouping.group_count for p in self.processors.values())
        benefit = sum(p.manager.grouping.total_benefit() for p in self.processors.values())
        unmerged = sum(
            p.manager.grouping.total_unmerged_rate() for p in self.processors.values()
        )
        return {
            "queries": float(queries),
            "groups": float(groups),
            "grouping_ratio": groups / queries if queries else 1.0,
            "benefit_ratio": benefit / unmerged if unmerged else 0.0,
        }
