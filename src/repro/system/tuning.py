"""The self-tuning loop: observed workload -> overlay reorganisation.

COSMOS is "COoperative and *Self-tuning*": the overlay network
optimizer "periodically monitors the status of the network and performs
the reorganization of the overlay network if necessary" (section 3.2).
This module closes that loop at the system level:

* :func:`traffic_demands` derives the (source, sink, rate) matrix the
  optimizer needs from the system's *current* subscriptions — source
  streams flowing to the processors that subscribed to them, and
  representative result streams flowing to their users — priced by the
  same C(q) estimator the query layer uses;
* :func:`reorganize_overlay` runs the cost-based local optimizer on the
  default dissemination tree against that matrix and, when it found
  improving swaps, rebuilds the routing state over the new tree.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.overlay.optimizer import (
    Demand,
    OptimizationReport,
    OverlayOptimizer,
)
from repro.system.rebuild import rebuild_network

if TYPE_CHECKING:
    from repro.system.cosmos import CosmosSystem


class TuningError(Exception):
    """Raised when reorganisation is impossible (no topology)."""


def traffic_demands(system: "CosmosSystem") -> List[Demand]:
    """The current demand matrix of the deployment.

    For every query group: each source stream flows from its source
    node to the group's processor at the (filtered, projected) rate the
    group's source profile admits — approximated by the representative's
    per-stream filtered rate — and the representative's result stream
    flows from the processor to every member's user at the member's own
    estimated rate (the CBN re-tightens en route).
    """
    demands: List[Demand] = []
    cost = system.cost_model
    for processor in system.processors.values():
        for group in processor.manager.groups:
            representative = group.representative
            closed = representative.predicate.closure()
            for ref in representative.streams:
                if ref.stream not in system._sources:
                    continue
                schema = system.catalog.get(ref.stream)
                selectivity = cost.stream_selectivity(
                    closed, ref.name, ref.stream, system.catalog
                )
                rate = schema.rate * selectivity * schema.tuple_width
                demands.append(
                    (system._sources[ref.stream], processor.node_id, rate)
                )
            for member in group.members:
                handle = system._queries.get(member.name)
                if handle is None:
                    continue
                rate = cost.result_rate(member, system.catalog)
                demands.append((processor.node_id, handle.user_node, rate))
    return demands


def reorganize_overlay(
    system: "CosmosSystem",
    max_rounds: int = 5,
    max_degree: Optional[int] = None,
) -> OptimizationReport:
    """One self-tuning round: optimize the tree, rebuild if improved.

    Returns the optimizer's report; when no improving swap exists the
    system is left untouched.  Requires the underlying topology (only
    physical links can enter the tree) and does not support per-stream
    trees (each would need its own reorganisation).
    """
    if system.topology is None:
        raise TuningError("overlay reorganisation needs the underlying topology")
    if system.network.has_stream_trees:
        raise TuningError(
            "per-stream trees must be reorganised individually; "
            "the default-tree optimizer would strand them"
        )
    demands = traffic_demands(system)
    optimizer = OverlayOptimizer(system.topology, max_degree=max_degree)
    improved, report = optimizer.optimize(system.tree, demands, max_rounds)
    if report.swaps > 0:
        rebuild_network(system, improved)
    return report
