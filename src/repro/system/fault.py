"""Two-layer fault tolerance (section 2).

The paper divides fault tolerance between the layers and defers the
details; this module implements a working version of both:

* **Data layer** (:func:`repair_tree`, :func:`fail_broker`): when a
  broker fails, the dissemination tree splits into components; the
  repair reconnects every orphaned component through the cheapest
  surviving *physical* link of the underlying topology and the CBN's
  subscriptions are re-propagated over the repaired tree.
* **Query layer** (:func:`fail_processor`): when a processor fails, its
  queries are re-distributed to surviving processors (fresh grouping,
  fresh profiles), and users transparently re-subscribe to the new
  result streams.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.overlay.topology import Edge, NodeId, Topology, edge_key
from repro.overlay.tree import DisseminationTree, TreeError
from repro.system.cosmos import CosmosSystem, SystemError_


class FaultError(Exception):
    """Raised when a failure cannot be repaired."""


def repair_tree(
    tree: DisseminationTree, topology: Topology, failed: NodeId
) -> DisseminationTree:
    """Remove ``failed`` and reconnect the fragments.

    Components are merged greedily: at every step the cheapest physical
    edge of ``topology`` that bridges the growing main component to any
    orphan is added (failed node's edges are off-limits).  Raises
    :class:`FaultError` when the survivors are physically partitioned.
    """
    components, forest = tree.remove_node(failed)
    if not components:
        raise FaultError("cannot remove the last node of the tree")
    components = sorted(components, key=len, reverse=True)
    main = set(components[0])
    pending = [set(c) for c in components[1:]]
    edges = list(forest.edges)
    weights = {edge: forest.weight(*edge) for edge in edges}
    while pending:
        best: Optional[Tuple[float, Edge, int]] = None
        for index, component in enumerate(pending):
            for edge in topology.edges:
                u, v = edge
                if failed in edge:
                    continue
                crosses = (u in main and v in component) or (
                    v in main and u in component
                )
                if not crosses:
                    continue
                weight = topology.weights[edge]
                if best is None or weight < best[0]:
                    best = (weight, edge, index)
        if best is None:
            raise FaultError(
                f"survivors are partitioned after removing {failed}"
            )
        weight, edge, index = best
        edges.append(edge)
        weights[edge] = weight
        main |= pending.pop(index)
    nodes = [n for n in tree.nodes if n != failed]
    return DisseminationTree(edges, weights, nodes=nodes)


def fail_broker(system: CosmosSystem, node: NodeId) -> DisseminationTree:
    """Data-layer failure: repair the tree and rebuild routing state.

    The node must be a pure broker (no SPE, no attached sources or
    users).  Routing state is control-plane soft state in a CBN, so
    recovery re-propagates every advertisement and subscription over
    the repaired tree; accumulated traffic statistics carry over.
    """
    if system.topology is None:
        raise FaultError("fault repair needs the underlying topology")
    if node in system.processors:
        raise FaultError(
            f"node {node} is a processor; use fail_processor instead"
        )
    for stream, src in system._sources.items():
        if src == node:
            raise FaultError(f"node {node} hosts source {stream!r}")
    for handle in system.queries:
        if handle.user_node == node:
            raise FaultError(f"node {node} has attached users")

    repaired = repair_tree(system.tree, system.topology, node)

    from repro.system.rebuild import rebuild_network

    rebuild_network(system, repaired)
    return repaired


def fail_processor(system: CosmosSystem, node: NodeId) -> List[str]:
    """Query-layer failure: re-distribute the processor's queries.

    Returns the ids of the re-homed queries.  The failed node keeps
    routing (its data layer survives in this model; combine with
    :func:`fail_broker` for a full crash).

    Re-homing preserves each query's accumulated results in
    chronological order (results collected before the failure precede
    any produced after it).  A query whose re-submission fails does not
    abort the loop: its torn-down state is fully cleaned up, every
    remaining orphan is still re-homed, and a :class:`FaultError`
    naming the lost queries is raised at the end (chained to the first
    underlying error), so the system is never left with queries whose
    subscriptions were silently dropped.
    """
    processor = system.processors.pop(node, None)
    if processor is None:
        raise FaultError(f"node {node} is not a processor")
    if not system.processors:
        system.processors[node] = processor
        raise FaultError("cannot fail the last processor")
    # Collect the orphaned queries and detach their subscriptions.
    orphaned: List[str] = []
    for group in processor.manager.groups:
        for member in group.members:
            orphaned.append(member.name)
    for sub_id in processor._source_subscriptions.values():
        system.network.unsubscribe(sub_id)
    from repro.system.node import Broker

    system.brokers[node] = Broker(node)
    rehomed: List[str] = []
    failures: List[Tuple[str, Exception]] = []
    for query_id in orphaned:
        handle = system._queries.pop(query_id, None)
        if handle is None:
            continue
        sub_id = system._user_subscriptions.pop(query_id, None)
        if sub_id is not None:
            system.network.unsubscribe(sub_id)
        try:
            new_handle = system.submit(
                handle.query, handle.user_node, name=query_id
            )
        except Exception as exc:  # keep re-homing the remaining orphans
            system._queries.pop(query_id, None)
            leaked = system._user_subscriptions.pop(query_id, None)
            if leaked is not None:
                system.network.unsubscribe(leaked)
            failures.append((query_id, exc))
            continue
        # Results collected before the failure come first; the fresh
        # handle only accumulates results from here on.
        new_handle.results[:0] = handle.results
        rehomed.append(query_id)
    if failures:
        lost = ", ".join(query_id for query_id, __ in failures)
        raise FaultError(
            f"queries [{lost}] could not be re-homed and were withdrawn"
        ) from failures[0][1]
    return rehomed


def fail_node(system: CosmosSystem, node: NodeId) -> List[str]:
    """Full crash of a node hosting both a processor and routing state.

    Composes the two layers: :func:`fail_processor` first re-homes the
    node's queries (demoting it to a pure broker), then
    :func:`fail_broker` removes it from the dissemination tree.  A
    plain broker falls straight through to :func:`fail_broker`.

    The partial-failure cleanup semantics of :func:`fail_processor` are
    preserved: when some queries cannot be re-homed, the broker-layer
    repair still runs (the node is gone either way) and the
    :class:`FaultError` naming the lost queries is re-raised afterwards.
    Returns the ids of the re-homed queries.
    """
    if node not in system.processors:
        fail_broker(system, node)
        return []
    rehomed: List[str] = []
    pending: Optional[FaultError] = None
    try:
        rehomed = fail_processor(system, node)
    except FaultError as exc:
        if node in system.processors:
            # Nothing was torn down (last processor / unknown node):
            # the node still stands, so the broker layer must not run.
            raise
        pending = exc
    fail_broker(system, node)
    if pending is not None:
        raise pending
    return rehomed
