"""Self-healing reliability layer.

The paper's two-layer fault-tolerance story (section 2) repairs
*state* — :func:`~repro.system.fault.repair_tree` reconnects the
dissemination tree, :func:`~repro.system.fault.fail_processor` re-homes
queries — but nothing detects failures or recovers lost data.  This
module closes that gap with three cooperating mechanisms, all pure
value-level state machines so the chaos harness can drive them
deterministically over the :class:`~repro.system.events.EventSimulator`:

* **Reliable sequenced uplinks** — each source uplink carries a
  monotone per-stream sequence number (:attr:`Datagram.seq`).  The
  sender half (:class:`SequencedUplink`) retains sent tuples for
  retransmission; the receiver half (:class:`UplinkReceiver`) detects
  gaps, suppresses duplicates, and holds out-of-order arrivals in a
  bounded reorder buffer released in sequence order.  NACK scheduling
  (capped exponential backoff) is the *caller's* job — these classes
  only report which sequence numbers are missing, so the protocol state
  stays replayable.
* **Heartbeat failure detection** — :class:`FailureDetector` grants
  each registered node a lease of ``heartbeat_period * lease_misses``;
  a node whose lease expires without a heartbeat is *suspected* and the
  supervisor invokes the existing repair path
  (``fail_broker``/``fail_processor``) automatically.
* **Graceful degradation** — when a repair finds the survivors
  physically partitioned, :func:`quarantine_partitioned` keeps the main
  component running and marks the stranded queries
  :attr:`~repro.system.cosmos.QueryStatus.DEGRADED` instead of raising
  into the caller; :func:`heal_partition` resumes them once the
  partition heals.

:func:`attach_reliability` hangs a shared :class:`ReliabilityState` on
a :class:`~repro.system.cosmos.CosmosSystem`, where
:class:`~repro.system.monitor.SystemMonitor.health` picks it up.

The adaptive load manager (:mod:`repro.system.loadmgr`) builds on this
layer: live group migration reuses the sequenced uplink as its state
handoff channel (the gap-free close punctuation is the cutover
barrier) and the same ``DEGRADED`` quarantine to freeze members while
they move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.overlay.topology import Edge, NodeId, Topology, edge_key
from repro.overlay.tree import DisseminationTree
from repro.system.cosmos import CosmosSystem, QueryStatus


class ReliabilityError(Exception):
    """Raised for transport protocol violations (bad sequence numbers)."""


# ---------------------------------------------------------------------------
# parameters and counters
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliabilityParams:
    """Tunable timing and sizing parameters of the reliability layer.

    Defaults are sized for the chaos harness timing budget: faults land
    in ``[0.2, 0.6] * duration`` and the epilogue starts at
    ``duration + 2 * max_delay + 1``, so detection
    (``heartbeat_period * lease_misses`` after the crash) and NACK
    recovery (worst case ``sum of backoffs + retransmit_rtt``) both
    complete before the convergence check.
    """

    #: Seconds between heartbeat sweeps.
    heartbeat_period: float = 5.0
    #: Missed periods before a node is suspected (lease = period * misses).
    lease_misses: int = 3
    #: Delay before the first NACK for a detected gap.
    nack_delay: float = 4.0
    #: Multiplier applied to the NACK delay after each unanswered NACK.
    nack_backoff: float = 2.0
    #: Ceiling on the NACK delay (capped exponential backoff).
    nack_cap: float = 32.0
    #: NACKs for one gap before the receiver abandons it.
    max_nacks: int = 6
    #: Simulated round-trip of a NACK + retransmission.
    retransmit_rtt: float = 2.0
    #: Reorder-buffer entries held before the low-watermark force flush.
    reorder_limit: int = 64
    #: Delay before retrying a repair attempt that raised.
    repair_backoff: float = 4.0
    #: Repair attempts per suspected node before giving up.
    max_repair_attempts: int = 4

    @property
    def lease(self) -> float:
        """Heartbeat lease duration: ``heartbeat_period * lease_misses``."""
        return self.heartbeat_period * self.lease_misses


@dataclass
class ReliabilityCounters:
    """Aggregate reliability activity, exposed via monitor ``health()``."""

    nacks_sent: int = 0
    retransmits: int = 0
    duplicates_suppressed: int = 0
    reorder_occupancy: int = 0
    reorder_peak: int = 0
    gaps_abandoned: int = 0
    nodes_suspected: int = 0
    repairs_applied: int = 0
    repairs_retried: int = 0
    queries_quarantined: int = 0
    queries_resumed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "nacks_sent": self.nacks_sent,
            "retransmits": self.retransmits,
            "duplicates_suppressed": self.duplicates_suppressed,
            "reorder_occupancy": self.reorder_occupancy,
            "reorder_peak": self.reorder_peak,
            "gaps_abandoned": self.gaps_abandoned,
            "nodes_suspected": self.nodes_suspected,
            "repairs_applied": self.repairs_applied,
            "repairs_retried": self.repairs_retried,
            "queries_quarantined": self.queries_quarantined,
            "queries_resumed": self.queries_resumed,
        }


# ---------------------------------------------------------------------------
# sequenced transport
# ---------------------------------------------------------------------------


class SequencedUplink:
    """Sender half of one (stream, source) reliable uplink.

    Stamps outgoing tuples with monotone sequence numbers and retains
    them for retransmission.  Retention is unbounded here; a real
    deployment would trim on cumulative acknowledgement, which the
    chaos harness does not need (runs are finite).
    """

    def __init__(self) -> None:
        self._next = 0
        #: seq -> (payload mapping, original send time)
        self._history: Dict[int, Tuple[Dict[str, object], float]] = {}

    @property
    def next_seq(self) -> int:
        return self._next

    def stamp(self, payload: Dict[str, object], sent: float) -> int:
        """Assign the next sequence number to ``payload`` and retain it."""
        seq = self._next
        self.record(seq, payload, sent)
        return seq

    def record(self, seq: int, payload: Dict[str, object], sent: float) -> None:
        """Retain a tuple under an externally assigned sequence number.

        The chaos scheduler pre-assigns sequence numbers at generation
        time (schedules are pure values) and the simulator learns of
        sends in *arrival* order, so out-of-order recording is allowed;
        re-recording an already retained number is a protocol violation.
        """
        if seq < 0:
            raise ReliabilityError(f"negative sequence number {seq}")
        if seq in self._history:
            raise ReliabilityError(f"sequence number {seq} reused")
        self._history[seq] = (dict(payload), float(sent))
        if seq >= self._next:
            self._next = seq + 1

    def retransmit(self, seq: int) -> Optional[Tuple[Dict[str, object], float]]:
        """The retained (payload, sent) for ``seq``; ``None`` if never sent.

        ``None`` tells the receiver the gap can never heal (the sender
        has no such tuple — e.g. a shrunken chaos schedule removed the
        send), so it should abandon the gap immediately instead of
        backing off through ``max_nacks``.
        """
        item = self._history.get(seq)
        if item is None:
            return None
        payload, sent = item
        return dict(payload), sent


@dataclass
class Offer:
    """Outcome of handing one arrival to an :class:`UplinkReceiver`.

    ``released`` lists the (seq, payload, sent) tuples now deliverable
    in sequence order; ``duplicate`` flags a suppressed arrival;
    ``fresh_gaps`` lists sequence numbers newly detected missing (the
    caller schedules NACKs for exactly these).
    """

    released: List[Tuple[int, Dict[str, object], float]]
    duplicate: bool = False
    fresh_gaps: List[int] = field(default_factory=list)


class UplinkReceiver:
    """Receiver half of one (stream, source) reliable uplink.

    Delivers tuples in sequence order: in-order arrivals release
    immediately, out-of-order arrivals wait in a bounded reorder buffer
    until the gap below them heals (retransmission) or is abandoned.
    When the buffer exceeds ``reorder_limit`` the low-watermark flush
    abandons the lowest outstanding gaps until occupancy is back under
    the bound — bounded memory beats completeness.
    """

    def __init__(
        self,
        params: Optional[ReliabilityParams] = None,
        counters: Optional[ReliabilityCounters] = None,
    ) -> None:
        self.params = params or ReliabilityParams()
        self.counters = counters or ReliabilityCounters()
        self._expected = 0
        self._buffer: Dict[int, Tuple[Dict[str, object], float]] = {}
        self._abandoned: Set[int] = set()
        self._known_gaps: Set[int] = set()

    @property
    def expected(self) -> int:
        """The next sequence number the receiver will release."""
        return self._expected

    @property
    def occupancy(self) -> int:
        return len(self._buffer)

    def outstanding(self, seq: int) -> bool:
        """Whether ``seq`` is still a gap worth NACKing."""
        return (
            seq >= self._expected
            and seq not in self._buffer
            and seq not in self._abandoned
        )

    @property
    def open_gaps(self) -> List[int]:
        """Every detected-but-unresolved gap, sorted.

        Unlike the *fresh* gaps :meth:`offer` and :meth:`announce`
        report (each gap exactly once, for NACK scheduling), this is
        the full outstanding set — what a barrier that must certify
        gap-free delivery (the migration cutover) has to inspect.
        """
        return sorted(self._known_gaps)

    def missing(self) -> List[int]:
        """Every outstanding gap below the highest buffered arrival."""
        if not self._buffer:
            return []
        top = max(self._buffer)
        return [
            seq
            for seq in range(self._expected, top)
            if seq not in self._buffer and seq not in self._abandoned
        ]

    def offer(
        self, seq: int, payload: Dict[str, object], sent: float
    ) -> Offer:
        """Hand one arrival to the receiver; returns what it unlocked."""
        if seq < 0:
            raise ReliabilityError(f"negative sequence number {seq}")
        if seq < self._expected or seq in self._buffer:
            # Below the watermark everything was already released or
            # abandoned; either way a second copy must not be delivered.
            self.counters.duplicates_suppressed += 1
            self._abandoned.discard(seq)
            return Offer(released=[], duplicate=True)
        self._buffer[seq] = (dict(payload), float(sent))
        released = self._flush()
        fresh = [gap for gap in self.missing() if gap not in self._known_gaps]
        self._known_gaps.update(fresh)
        if len(self._buffer) > self.params.reorder_limit:
            released.extend(self._force_flush())
        self._note_occupancy()
        return Offer(released=released, fresh_gaps=fresh)

    def announce(self, top: int) -> List[int]:
        """Source punctuation: every sequence number up to ``top`` was sent.

        Exposes *trailing* gaps — drops after the last tuple that
        actually arrived, which ordinary gap detection (driven by higher
        arrivals) can never see.  Returns the newly detected gaps so the
        caller can NACK exactly those.
        """
        if top < self._expected:
            return []
        fresh = [
            seq
            for seq in range(self._expected, top + 1)
            if seq not in self._buffer
            and seq not in self._abandoned
            and seq not in self._known_gaps
        ]
        self._known_gaps.update(fresh)
        return fresh

    def abandon(self, seq: int) -> List[Tuple[int, Dict[str, object], float]]:
        """Give up on a gap; returns arrivals it was blocking."""
        if seq < self._expected or seq in self._buffer:
            return []
        self._abandoned.add(seq)
        self._known_gaps.discard(seq)
        self.counters.gaps_abandoned += 1
        released = self._flush()
        self._note_occupancy()
        return released

    def _flush(self) -> List[Tuple[int, Dict[str, object], float]]:
        released: List[Tuple[int, Dict[str, object], float]] = []
        while True:
            if self._expected in self._buffer:
                payload, sent = self._buffer.pop(self._expected)
                self._known_gaps.discard(self._expected)
                # A late arrival can overtake its own abandonment; the
                # buffered copy wins and the abandonment mark is stale.
                self._abandoned.discard(self._expected)
                released.append((self._expected, payload, sent))
            elif self._expected in self._abandoned:
                self._abandoned.discard(self._expected)
            else:
                break
            self._expected += 1
        return released

    def _force_flush(self) -> List[Tuple[int, Dict[str, object], float]]:
        """Low-watermark flush: abandon the oldest gaps until bounded."""
        released: List[Tuple[int, Dict[str, object], float]] = []
        while len(self._buffer) > self.params.reorder_limit:
            lowest = min(self._buffer)
            for gap in range(self._expected, lowest):
                if gap not in self._abandoned:
                    self._abandoned.add(gap)
                    self._known_gaps.discard(gap)
                    self.counters.gaps_abandoned += 1
            released.extend(self._flush())
        return released

    def _note_occupancy(self) -> None:
        self.counters.reorder_occupancy = len(self._buffer)
        if len(self._buffer) > self.counters.reorder_peak:
            self.counters.reorder_peak = len(self._buffer)


# ---------------------------------------------------------------------------
# failure detection
# ---------------------------------------------------------------------------


class FailureDetector:
    """Lease-based heartbeat failure detector.

    Each registered node holds a lease of ``heartbeat_period *
    lease_misses`` seconds, renewed by :meth:`heartbeat`.  :meth:`check`
    moves nodes whose lease expired into the suspected set and returns
    them (sorted, once each) so the supervisor can repair
    deterministically.  Time comes from the caller — the detector never
    reads a clock.
    """

    def __init__(self, params: Optional[ReliabilityParams] = None) -> None:
        self.params = params or ReliabilityParams()
        self._deadlines: Dict[NodeId, float] = {}
        self._suspected: Set[NodeId] = set()

    @property
    def monitored(self) -> List[NodeId]:
        return sorted(self._deadlines)

    @property
    def suspected(self) -> List[NodeId]:
        return sorted(self._suspected)

    def register(self, node: NodeId, now: float) -> None:
        self._deadlines[node] = now + self.params.lease
        self._suspected.discard(node)

    def deregister(self, node: NodeId) -> None:
        self._deadlines.pop(node, None)
        self._suspected.discard(node)

    def heartbeat(self, node: NodeId, now: float) -> None:
        """Renew ``node``'s lease; unknown nodes are ignored (stale
        heartbeats from a node already deregistered by repair)."""
        if node in self._deadlines:
            self._deadlines[node] = now + self.params.lease

    def check(self, now: float) -> List[NodeId]:
        """Nodes whose lease expired since the last check (sorted)."""
        newly = sorted(
            node for node, deadline in self._deadlines.items() if deadline <= now
        )
        for node in newly:
            del self._deadlines[node]
            self._suspected.add(node)
        return newly


# ---------------------------------------------------------------------------
# shared state
# ---------------------------------------------------------------------------


@dataclass
class ReliabilityState:
    """Everything the reliability layer knows about one deployment.

    One state object is deliberately shareable between twin systems
    (fast-path / naive-scan): transport and detection decisions are
    made once and applied to both, so the twins cannot diverge on
    protocol nondeterminism.
    """

    params: ReliabilityParams = field(default_factory=ReliabilityParams)
    counters: ReliabilityCounters = field(default_factory=ReliabilityCounters)
    uplinks: Dict[str, SequencedUplink] = field(default_factory=dict)
    receivers: Dict[str, UplinkReceiver] = field(default_factory=dict)
    detector: FailureDetector = field(default=None)  # type: ignore[assignment]
    failed_nodes: Set[NodeId] = field(default_factory=set)
    #: query id -> stranded user node, while DEGRADED
    quarantined: Dict[str, NodeId] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.detector is None:
            self.detector = FailureDetector(self.params)

    def uplink(self, stream: str) -> SequencedUplink:
        if stream not in self.uplinks:
            self.uplinks[stream] = SequencedUplink()
        return self.uplinks[stream]

    def receiver(self, stream: str) -> UplinkReceiver:
        if stream not in self.receivers:
            self.receivers[stream] = UplinkReceiver(self.params, self.counters)
        return self.receivers[stream]


def attach_reliability(
    system: CosmosSystem,
    params: Optional[ReliabilityParams] = None,
    state: Optional[ReliabilityState] = None,
) -> ReliabilityState:
    """Attach (or share) a reliability state on ``system``.

    Pass an existing ``state`` to share one protocol brain between twin
    systems; otherwise a fresh state is created from ``params``.
    """
    if state is None:
        state = ReliabilityState(params=params or ReliabilityParams())
    system.reliability = state
    return state


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------


def _components(topology: Topology, excluded: Set[NodeId]) -> List[Set[NodeId]]:
    """Connected components of the physical topology minus ``excluded``."""
    remaining = [n for n in topology.nodes if n not in excluded]
    seen: Set[NodeId] = set()
    components: List[Set[NodeId]] = []
    for start in remaining:
        if start in seen:
            continue
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for other in sorted(topology.neighbors(node)):
                if other in excluded or other in component:
                    continue
                component.add(other)
                frontier.append(other)
        seen |= component
        components.append(component)
    return components


def _restricted_spanning_tree(
    topology: Topology,
    nodes: Set[NodeId],
    base_edges: Optional[List[Edge]] = None,
    base_weights: Optional[Dict[Edge, float]] = None,
) -> DisseminationTree:
    """Kruskal spanning tree over ``nodes`` using only internal edges.

    ``base_edges`` (with weights) are taken as already chosen — used by
    :func:`heal_partition` to extend the surviving tree instead of
    rebuilding it from scratch (subscription paths stay stable).
    """
    parent: Dict[NodeId, NodeId] = {node: node for node in nodes}

    def find(x: NodeId) -> NodeId:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: List[Edge] = []
    weights: Dict[Edge, float] = {}
    for edge in base_edges or []:
        u, v = edge
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            chosen.append(edge)
            weights[edge] = (base_weights or {}).get(edge, 1.0)
    candidates = sorted(
        (
            edge
            for edge in topology.edges
            if edge[0] in nodes and edge[1] in nodes
        ),
        key=lambda e: (topology.weights[e], e),
    )
    for edge in candidates:
        u, v = edge
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            chosen.append(edge)
            weights[edge] = topology.weights[edge]
    return DisseminationTree(chosen, weights, nodes=sorted(nodes))


def quarantine_partitioned(
    system: CosmosSystem, failed: NodeId
) -> List[str]:
    """Degraded-mode fallback when removing ``failed`` partitions the net.

    Keeps the component that can still run the workload (every source
    and every processor must land in it), rebuilds the dissemination
    tree over that component alone, and quarantines each query whose
    user was stranded outside: its user subscription is withdrawn and
    its handle flips to :attr:`QueryStatus.DEGRADED` — results stop,
    but the handle, accumulated results, and the SPE-side group all
    survive for :func:`heal_partition`.

    Raises :class:`~repro.system.fault.FaultError` when a source or a
    processor is stranded — that data loss cannot be quarantined into
    a handle, so it stays a hard fault.  Returns the quarantined query
    ids (sorted).
    """
    from repro.system.fault import FaultError
    from repro.system.rebuild import rebuild_network

    if system.topology is None:
        raise FaultError("degraded-mode repair needs the underlying topology")
    state = system.reliability
    if state is None:
        state = attach_reliability(system)
    excluded = set(state.failed_nodes) | {failed}
    components = _components(system.topology, excluded)
    if not components:
        raise FaultError("cannot remove the last node of the topology")
    anchors = set(system._sources.values()) | set(system.processors)
    main = max(
        components,
        key=lambda c: (len(anchors & c), len(c), -min(c)),
    )
    stranded_anchors = sorted(anchors - main)
    if stranded_anchors:
        raise FaultError(
            f"cannot degrade: source/processor nodes {stranded_anchors} "
            f"stranded outside the main partition"
        )
    quarantined: List[str] = []
    for query_id, handle in sorted(system._queries.items()):
        if handle.status is not QueryStatus.ACTIVE:
            continue
        if handle.user_node in main:
            continue
        sub_id = system._user_subscriptions.pop(query_id, None)
        if sub_id is not None:
            system.network.unsubscribe(sub_id)
        handle.status = QueryStatus.DEGRADED
        state.quarantined[query_id] = handle.user_node
        state.counters.queries_quarantined += 1
        quarantined.append(query_id)
    repaired = _restricted_spanning_tree(system.topology, main)
    rebuild_network(system, repaired)
    state.failed_nodes.add(failed)
    return quarantined


# cos: disable=COS802 (operator-facing heal path: invoked by tests/supervisors after connectivity is restored)
def heal_partition(system: CosmosSystem) -> List[str]:
    """Resume quarantined queries whose partition has healed.

    Re-examines physical connectivity (the caller restored it — e.g.
    ``system.topology.add_edge`` across the old cut): any stranded
    component now reachable from the surviving tree is re-attached by
    extending the tree with the cheapest internal edges, the routing
    state is rebuilt, and every quarantined query whose user node is
    back in the tree is re-subscribed and flipped to ``ACTIVE``.
    Returns the resumed query ids (sorted); quarantined queries whose
    partition still stands are left untouched.
    """
    from repro.system.rebuild import rebuild_network

    state = system.reliability
    if state is None or not state.quarantined:
        return []
    assert system.topology is not None
    components = _components(system.topology, set(state.failed_nodes))
    tree_nodes = set(system.tree.nodes)
    main = next((c for c in components if c & tree_nodes), tree_nodes)
    if not (main - tree_nodes):
        return []  # nothing newly reachable
    base_weights = {
        edge: system.tree.weight(*edge) for edge in system.tree.edges
    }
    extended = _restricted_spanning_tree(
        system.topology, main, system.tree.edges, base_weights
    )
    rebuild_network(system, extended)
    resumed: List[str] = []
    for query_id in sorted(state.quarantined):
        handle = system._queries.get(query_id)
        if handle is None:  # withdrawn while degraded
            del state.quarantined[query_id]
            continue
        if handle.status is not QueryStatus.DEGRADED:
            del state.quarantined[query_id]  # stale entry: resumed elsewhere
            continue
        if handle.user_node not in main:
            continue
        processor = system.processors[handle.processor_node]
        group = processor.manager.grouping.group_of(query_id)
        if group is None:
            del state.quarantined[query_id]
            continue
        profile = processor.manager.result_profiles_of(group)[query_id]
        sub_id = system.network.subscribe(
            profile,
            handle.user_node,
            subscription_id=f"user:{query_id}:v{next(system._sub_version)}",
        )
        system._user_subscriptions[query_id] = sub_id
        handle.status = QueryStatus.ACTIVE
        del state.quarantined[query_id]
        state.counters.queries_resumed += 1
        resumed.append(query_id)
    return resumed
