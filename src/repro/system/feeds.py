"""Live source simulation: scheduled publishers on the event simulator.

The replay helpers (`CosmosSystem.replay`) consume pre-materialised
feeds; this module instead models *live* sources that generate tuples
on their own schedule, driven by the discrete-event simulator — the
"data sources continuously publish their data to the network" of
Figure 1.  Periodic and Poisson arrival processes are provided; both
draw payloads from a user-supplied generator function.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.system.cosmos import CosmosSystem
from repro.system.events import EventSimulator

#: Generates the payload of the tuple emitted at a given time.
PayloadFn = Callable[[float], Dict[str, object]]


class FeedError(Exception):
    """Raised for misconfigured sources."""


@dataclass
class ScheduledSource:
    """One live source: a stream, an arrival process, a payload function.

    ``interval`` is the mean inter-arrival gap in seconds; with
    ``poisson=True`` gaps are exponentially distributed (rate
    ``1/interval``), otherwise strictly periodic with an initial phase.
    """

    stream: str
    interval: float
    payload_fn: PayloadFn
    poisson: bool = False
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise FeedError(f"source {self.stream!r} needs a positive interval")

    def next_gap(self, rng: random.Random) -> float:
        if self.poisson:
            return rng.expovariate(1.0 / self.interval)
        return self.interval


class LiveFeedRunner:
    """Drives scheduled sources through a :class:`CosmosSystem`.

    Every emission publishes into the system at its simulated time and
    immediately flows end to end (CBN -> SPE -> CBN -> users), so
    query results accumulate exactly as they would under the replay
    API — but arrival interleaving now comes from the simulator.
    """

    def __init__(
        self,
        system: CosmosSystem,
        sources: Sequence[ScheduledSource],
        rng: Optional[random.Random] = None,
    ) -> None:
        self.system = system
        self.sources = list(sources)
        self._rng = rng or random.Random(0)
        self.simulator = EventSimulator()
        self.published = 0
        self.delivered = 0
        for source in self.sources:
            if source.stream not in system.catalog:
                raise FeedError(f"unknown stream {source.stream!r}")
            first = source.phase + source.next_gap(self._rng)
            self.simulator.schedule(first, self._emitter(source))

    def _emitter(self, source: ScheduledSource) -> Callable[[], None]:
        def emit() -> None:
            now = self.simulator.now
            payload = dict(source.payload_fn(now))
            payload.setdefault("timestamp", now)
            deliveries = self.system.publish(source.stream, payload, now)
            self.published += 1
            self.delivered += len(deliveries)
            self.simulator.schedule_in(
                source.next_gap(self._rng), self._emitter(source)
            )

        return emit

    def run(self, duration: float) -> Dict[str, int]:
        """Simulate ``duration`` seconds; returns emission statistics."""
        self.simulator.run(until=duration)
        return {"published": self.published, "delivered": self.delivered}
