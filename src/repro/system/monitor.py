"""System monitoring: the status the self-tuning loop observes.

Section 3.2: each node's optimizer "monitors the workloads and
connections of its neighbors".  :class:`SystemMonitor` aggregates that
view for a whole deployment — per-processor query-layer load, the
hottest overlay links, subscription pressure — as structured data and
as a rendered text report (used by the examples and by operators of the
simulation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.overlay.topology import Edge

if TYPE_CHECKING:
    from repro.system.cosmos import CosmosSystem


@dataclass(frozen=True)
class ProcessorLoad:
    """Query-layer load of one processor."""

    node_id: int
    queries: int
    groups: int
    merged_rate: float

    @property
    def grouping_ratio(self) -> float:
        return self.groups / self.queries if self.queries else 1.0


@dataclass(frozen=True)
class LinkHotspot:
    """One overlay link and its accumulated data traffic."""

    edge: Edge
    messages: int
    bytes: float


class SystemMonitor:
    """Read-only aggregate view over a running :class:`CosmosSystem`."""

    def __init__(self, system: "CosmosSystem") -> None:
        self._system = system

    # -- query layer -------------------------------------------------------------

    def processor_loads(self) -> List[ProcessorLoad]:
        loads = []
        for processor in self._system.processors.values():
            grouping = processor.manager.grouping
            loads.append(
                ProcessorLoad(
                    node_id=processor.node_id,
                    queries=grouping.query_count,
                    groups=grouping.group_count,
                    merged_rate=grouping.total_merged_rate(),
                )
            )
        return sorted(loads, key=lambda l: l.node_id)

    def load_imbalance(self) -> float:
        """max/mean query count across processors (1.0 = balanced)."""
        counts = [load.queries for load in self.processor_loads()]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean else 1.0

    # -- data layer ----------------------------------------------------------------

    def hottest_links(self, top: int = 5) -> List[LinkHotspot]:
        usage = self._system.network.data_stats.as_dict()
        spots = [
            LinkHotspot(edge, messages, size)
            for edge, (messages, size) in usage.items()
        ]
        spots.sort(key=lambda s: s.bytes, reverse=True)
        return spots[:top]

    def routing_pressure(self) -> Dict[str, float]:
        network = self._system.network
        return {
            "subscriptions": float(network.subscription_count),
            "routing_entries": float(network.routing_state_size()),
            "control_bytes": network.control_stats.total_bytes(),
            "data_bytes": network.data_stats.total_bytes(),
        }

    # -- reliability ---------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """Reliability- and load-layer health in one flat mapping.

        Counter values come from the attached
        :class:`~repro.system.reliability.ReliabilityState` and
        :class:`~repro.system.loadmgr.LoadState`; without one, the
        corresponding counters read zero and the node/query lists are
        empty (an unmonitored system is trivially healthy).  The key
        set is stable either way, so sweeps can aggregate blindly.
        """
        state = self._system.reliability
        if state is None:
            from repro.system.reliability import ReliabilityCounters

            counters = ReliabilityCounters().as_dict()
            suspected: List[int] = []
            quarantined: List[str] = []
        else:
            counters = state.counters.as_dict()
            suspected = state.detector.suspected
            quarantined = sorted(state.quarantined)
        out: Dict[str, object] = dict(counters)
        out["suspected_nodes"] = suspected
        out["quarantined_queries"] = quarantined
        out["degraded_queries"] = sum(
            1
            for handle in self._system.queries
            if handle.status.name == "DEGRADED"
        )
        load = self._system.load
        if load is None:
            from repro.system.loadmgr import LoadCounters

            out.update(LoadCounters().as_dict())
            out["hot_processors"] = []
            out["migrations_in_flight"] = 0
        else:
            out.update(load.counters.as_dict())
            out["hot_processors"] = load.detector.hot
            out["migrations_in_flight"] = len(load.active)
        return out

    # -- reporting -------------------------------------------------------------------

    def report(self) -> str:
        """A multi-section plain-text status report."""
        from repro.experiments.runner import render_table

        sections = []
        loads = self.processor_loads()
        sections.append(
            render_table(
                ["processor", "queries", "groups", "grouping ratio", "rep rate B/s"],
                [
                    [l.node_id, l.queries, l.groups, l.grouping_ratio, l.merged_rate]
                    for l in loads
                ],
                "Query layer",
            )
        )
        hot = self.hottest_links()
        if hot:
            sections.append(
                render_table(
                    ["link", "messages", "bytes"],
                    [[f"{s.edge[0]}-{s.edge[1]}", s.messages, s.bytes] for s in hot],
                    "Hottest links",
                )
            )
        pressure = self.routing_pressure()
        sections.append(
            render_table(
                ["metric", "value"],
                sorted(pressure.items()),
                "Data layer",
            )
        )
        health = self.health()
        sections.append(
            render_table(
                ["metric", "value"],
                [
                    [key, value if not isinstance(value, list) else
                     (", ".join(str(v) for v in value) or "-")]
                    for key, value in sorted(health.items())
                ],
                "Reliability",
            )
        )
        return "\n\n".join(sections)
