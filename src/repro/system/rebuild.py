"""Rebuilding CBN routing state over a new dissemination tree.

Routing state in a CBN is control-plane soft state: advertisements and
subscriptions can always be re-propagated.  Both the fault-tolerance
path (tree repaired around a failed broker) and the self-tuning path
(tree reorganised by the overlay optimizer) swap the tree and call
:func:`rebuild_network` to reconstruct routing; accumulated traffic
statistics carry over so cost measurements stay comparable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cbn.network import ContentBasedNetwork
from repro.core.profiles import result_profile, source_profile
from repro.overlay.tree import DisseminationTree

if TYPE_CHECKING:
    from repro.system.cosmos import CosmosSystem


class RebuildError(Exception):
    """Raised when the new tree cannot host the current state."""


def rebuild_network(system: "CosmosSystem", tree: DisseminationTree) -> None:
    """Swap the system onto ``tree`` and re-propagate all soft state.

    The new tree must contain every node that still hosts a source, a
    processor or a user.  Per-stream trees are not carried over (they
    would need their own reorganisation); systems using them must
    rebuild those separately.
    """
    from repro.system.cosmos import QueryStatus

    nodes = set(tree.nodes)
    for stream, src in system._sources.items():
        if src not in nodes:
            raise RebuildError(f"source {stream!r} host {src} not in new tree")
    for node in system.processors:
        if node not in nodes:
            raise RebuildError(f"processor node {node} not in new tree")
    for handle in system.queries:
        # Degraded queries are quarantined precisely because their user
        # is unreachable; they carry no subscriptions to rebuild.
        if handle.status is not QueryStatus.ACTIVE:
            continue
        if handle.user_node not in nodes:
            raise RebuildError(f"user node {handle.user_node} not in new tree")

    old_network = system.network
    system.tree = tree
    system.network = ContentBasedNetwork(
        tree,
        system.catalog,
        scope_to_advertisements=old_network.scope_to_advertisements,
        use_subsumption=old_network.use_subsumption,
        fast_path=old_network.fast_path,
    )
    system.network.data_stats.merge(old_network.data_stats)
    system.network.control_stats.merge(old_network.control_stats)

    # Sources first (advertisement-scoped propagation needs them).
    for stream, src in system._sources.items():
        system.network.advertise(stream, src)

    # Users' result subscriptions.
    for processor in system.processors.values():
        processor.network = system.network
        processor._advertised = set()
        processor._source_subscriptions = {}
    for query_id, sub_id in list(system._user_subscriptions.items()):
        handle = system.query(query_id)
        processor = system.processors[handle.processor_node]
        group = processor.manager.grouping.group_of(query_id)
        if group is None:
            continue
        profile = result_profile(
            next(m for m in group.members if m.name == query_id),
            group.representative,
            system.catalog,
            processor.manager._result_stream_of(group),
            subscriber=query_id,
        )
        system.network.subscribe(profile, handle.user_node, subscription_id=sub_id)

    # Processors' result advertisements and source subscriptions.
    for processor in system.processors.values():
        for group in processor.manager.groups:
            result_stream = processor.manager._result_stream_of(group)
            system.network.advertise(result_stream, processor.node_id)
            processor._advertised.add(result_stream)
            profile = source_profile(
                group.representative, system.catalog, subscriber=group.group_id
            )
            sub_id = system.network.subscribe(
                profile,
                processor.node_id,
                subscription_id=f"src:{processor.node_id}:{group.group_id}:rebuild",
            )
            processor._source_subscriptions[group.group_id] = sub_id
