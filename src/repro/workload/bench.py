"""Shared measurement harness for the CBN publish benchmarks.

One set of warm/timed/equivalence helpers used by the pytest gates in
``benchmarks/test_microbench.py`` and the CI artifacts written by
``tools/bench_publish.py`` and ``tools/bench_scale.py``, so the gates
and the artifacts measure the *same* procedures and cannot drift:

* :func:`publish_loop` / :func:`publish_loop_time` drive a workload
  datagram-at-a-time through ``network.publish`` (the shape both the
  naive reference and the scalar fast path are measured in);
* :func:`group_feed` folds a feed into consecutive same-``(stream,
  origin)`` runs and :func:`publish_batched` /
  :func:`publish_batched_time` drive those runs through
  ``network.publish_many`` (the columnar batch path);
* :func:`snapshot` and :func:`stats_equal` are the byte-identical
  equivalence checks (same subscribers, payloads and order; same
  per-link traffic).

Timing helpers return wall seconds for one pass over the feed; callers
interleave reps of the compared paths and keep each path's best rep so
both sample the same machine conditions.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.cbn.datagram import Datagram
from repro.cbn.network import ContentBasedNetwork
from repro.overlay.topology import NodeId

#: One feed entry: a datagram and the broker it is injected at.
FeedItem = Tuple[Datagram, NodeId]
#: One grouped run: consecutive same-stream datagrams and their broker.
FeedRun = Tuple[List[Datagram], NodeId]
#: Per-datagram delivery snapshot for byte-identical comparison.
Snapshot = List[Tuple[str, NodeId, Datagram]]


def snapshot(deliveries) -> Snapshot:
    """The comparable content of one datagram's delivery list."""
    return [(d.subscription_id, d.node, d.datagram) for d in deliveries]


def publish_loop(network: ContentBasedNetwork, feed: List[FeedItem]) -> List[Snapshot]:
    """Publish datagram-at-a-time; returns per-datagram snapshots."""
    return [
        snapshot(network.publish(datagram, origin))
        for datagram, origin in feed
    ]


def publish_loop_time(network: ContentBasedNetwork, feed: List[FeedItem]) -> float:
    """Wall seconds for one datagram-at-a-time pass over the feed."""
    publish = network.publish
    # cos: disable=COS502 (benchmark harness: wall-clock is the measurement, not simulated time)
    start = time.perf_counter()
    for datagram, origin in feed:
        publish(datagram, origin)
    # cos: disable=COS502 (benchmark harness: wall-clock is the measurement, not simulated time)
    return time.perf_counter() - start


def group_feed(feed: List[FeedItem]) -> List[FeedRun]:
    """Fold a feed into consecutive same-``(stream, origin)`` runs.

    This is the grouping ``publish_many`` exploits: each run enters
    the network as one batch.  Grouping only joins *consecutive*
    entries, so replaying the runs preserves the feed order exactly.
    """
    runs: List[FeedRun] = []
    for datagram, origin in feed:
        if runs and runs[-1][1] == origin and runs[-1][0][0].stream == datagram.stream:
            runs[-1][0].append(datagram)
        else:
            runs.append(([datagram], origin))
    return runs


def publish_batched(
    network: ContentBasedNetwork, runs: List[FeedRun]
) -> List[Snapshot]:
    """Publish grouped runs via ``publish_many``; per-datagram snapshots."""
    out: List[Snapshot] = []
    for batch, origin in runs:
        out.extend(
            snapshot(deliveries)
            for deliveries in network.publish_many(batch, origin)
        )
    return out


def publish_batched_time(
    network: ContentBasedNetwork, runs: List[FeedRun]
) -> float:
    """Wall seconds for one batched pass over the grouped runs."""
    publish_many = network.publish_many
    # cos: disable=COS502 (benchmark harness: wall-clock is the measurement, not simulated time)
    start = time.perf_counter()
    for batch, origin in runs:
        publish_many(batch, origin)
    # cos: disable=COS502 (benchmark harness: wall-clock is the measurement, not simulated time)
    return time.perf_counter() - start


def stats_equal(a: ContentBasedNetwork, b: ContentBasedNetwork) -> bool:
    """Identical per-link data-traffic accounting on both networks."""
    return a.data_stats.as_dict() == b.data_stats.as_dict()


def best_of(reps: int, *timers) -> List[float]:
    """Interleave timing reps of the given thunks; best rep of each.

    Interleaving (A, B, A, B, ...) rather than (A, A, B, B) keeps a
    machine-load burst from biasing one path's comparison.
    """
    best = [float("inf")] * len(timers)
    for __ in range(reps):
        for index, timer in enumerate(timers):
            best[index] = min(best[index], timer())
    return best
