"""Seeded zipfian sampling.

Figure 4 varies the query-generation distribution from uniform to
zipfian with skew parameters 1.0, 1.5 and 2.0.  :class:`ZipfSampler`
draws ranks ``0 .. n-1`` with probability proportional to
``(rank + 1) ** -skew``; skew 0 is exactly uniform.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class ZipfSampler:
    """Draw ranks (or items) from a finite zipfian distribution."""

    def __init__(self, n: int, skew: float, rng: Optional[random.Random] = None) -> None:
        if n < 1:
            raise ValueError(f"need at least one rank, got {n}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.n = n
        self.skew = skew
        self._rng = rng or random.Random(0)
        weights = [(rank + 1) ** -skew for rank in range(n)]
        total = sum(weights)
        cumulative: List[float] = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # guard against float drift
        self._cumulative = cumulative

    def sample(self) -> int:
        """One rank in ``[0, n)``; rank 0 is the most popular."""
        u = self._rng.random()
        return bisect.bisect_left(self._cumulative, u)

    def sample_item(self, items: Sequence[T]) -> T:
        """One item of ``items`` (must have length ``n``)."""
        if len(items) != self.n:
            raise ValueError(
                f"sampler built for {self.n} ranks, got {len(items)} items"
            )
        return items[self.sample()]

    def probability(self, rank: int) -> float:
        """The probability mass of ``rank``."""
        if not 0 <= rank < self.n:
            raise ValueError(f"rank {rank} out of range [0, {self.n})")
        previous = self._cumulative[rank - 1] if rank > 0 else 0.0
        return self._cumulative[rank] - previous
