"""The auction stream monitoring application (Table 1).

Two streams in the style of the NEXMark/Table 1 schema:

* ``OpenAuction(itemID, sellerID, start_price, timestamp)``
* ``ClosedAuction(itemID, buyerID, timestamp)``

and a seeded generator where every item opens exactly once and closes
after a random delay, so the fraction of auctions closing within 3h vs
5h (queries q1 vs q2) is controllable.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

from repro.cbn.datagram import Datagram
from repro.cql.schema import Attribute, Catalog, StreamSchema

OPEN_AUCTION_SCHEMA = StreamSchema(
    "OpenAuction",
    [
        Attribute("itemID", "int", 0, 10_000),
        Attribute("sellerID", "int", 0, 1_000),
        Attribute("start_price", "float", 0.0, 1000.0),
        Attribute("timestamp", "timestamp"),
    ],
    rate=1.0,
)

CLOSED_AUCTION_SCHEMA = StreamSchema(
    "ClosedAuction",
    [
        Attribute("itemID", "int", 0, 10_000),
        Attribute("buyerID", "int", 0, 1_000),
        Attribute("timestamp", "timestamp"),
    ],
    rate=1.0,
)

#: Table 1, q1: auctions that closed within three hours of opening.
TABLE1_Q1 = (
    "SELECT O.* "
    "FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID"
)

#: Table 1, q2: items and buyers of auctions closed within five hours.
TABLE1_Q2 = (
    "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp "
    "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID"
)

#: Table 1, q3: the representative containing q1 and q2.
TABLE1_Q3 = (
    "SELECT O.*, C.buyerID, C.timestamp "
    "FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C "
    "WHERE O.itemID = C.itemID"
)


def auction_catalog() -> Catalog:
    """A catalog holding the two auction stream schemas."""
    return Catalog([OPEN_AUCTION_SCHEMA, CLOSED_AUCTION_SCHEMA])


class AuctionWorkload:
    """Seeded open/close auction event generator.

    Parameters
    ----------
    mean_duration:
        Mean auction duration in seconds (exponentially distributed),
        default 3 hours so a healthy share of auctions close within the
        q1 window and more within the q2 window.
    open_interval:
        Seconds between consecutive auction openings.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        mean_duration: float = 3 * 3600.0,
        open_interval: float = 60.0,
        sellers: int = 100,
        buyers: int = 100,
    ) -> None:
        self._rng = rng or random.Random(0)
        self.mean_duration = mean_duration
        self.open_interval = open_interval
        self.sellers = sellers
        self.buyers = buyers

    def feed(self, n_items: int) -> List[Datagram]:
        """Open ``n_items`` auctions and close them all; timestamp ordered."""
        rng = self._rng
        events: List[Datagram] = []
        for item in range(n_items):
            open_time = item * self.open_interval
            close_time = open_time + rng.expovariate(1.0 / self.mean_duration)
            events.append(
                Datagram(
                    "OpenAuction",
                    {
                        "itemID": item,
                        "sellerID": rng.randrange(self.sellers),
                        "start_price": round(rng.uniform(1.0, 1000.0), 2),
                        "timestamp": open_time,
                    },
                    open_time,
                )
            )
            events.append(
                Datagram(
                    "ClosedAuction",
                    {
                        "itemID": item,
                        "buyerID": rng.randrange(self.buyers),
                        "timestamp": close_time,
                    },
                    close_time,
                )
            )
        events.sort(key=lambda d: d.timestamp)
        return events
