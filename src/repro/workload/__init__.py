"""Workload generation for the evaluation (section 5).

* :mod:`repro.workload.zipf` — seeded zipfian sampling (the query
  popularity distributions of Figure 4: uniform, zipf 1.0/1.5/2.0);
* :mod:`repro.workload.sensorscope` — a synthetic stand-in for the
  SensorScope environmental dataset: 63 streams of typed sensor
  attributes with a timestamp-driven replayer;
* :mod:`repro.workload.auction` — the auction monitoring application of
  Table 1 (OpenAuction / ClosedAuction);
* :mod:`repro.workload.queries` — the random query generator ("randomly
  selecting the involved streams, their window sizes and the filtering
  predicates based on a distribution (uniform or zipfian)");
* :mod:`repro.workload.fastpath` — the matching-heavy publish workload
  shared by the fast-path/columnar benchmarks and their pytest gates;
* :mod:`repro.workload.bench` — the shared warm/timed/equivalence
  measurement harness those benchmarks run the workload through.
"""

from __future__ import annotations

from repro.workload.auction import (
    AuctionWorkload,
    CLOSED_AUCTION_SCHEMA,
    OPEN_AUCTION_SCHEMA,
    TABLE1_Q1,
    TABLE1_Q2,
    TABLE1_Q3,
)
from repro.workload.bench import (
    best_of,
    group_feed,
    publish_batched,
    publish_batched_time,
    publish_loop,
    publish_loop_time,
    snapshot,
    stats_equal,
)
from repro.workload.fastpath import FastPathWorkload, build_fastpath_workload
from repro.workload.queries import QueryWorkload, WorkloadConfig
from repro.workload.sensorscope import sensorscope_catalog, SensorScopeReplayer
from repro.workload.zipf import ZipfSampler

__all__ = [
    "AuctionWorkload",
    "CLOSED_AUCTION_SCHEMA",
    "FastPathWorkload",
    "OPEN_AUCTION_SCHEMA",
    "QueryWorkload",
    "SensorScopeReplayer",
    "TABLE1_Q1",
    "TABLE1_Q2",
    "TABLE1_Q3",
    "WorkloadConfig",
    "ZipfSampler",
    "best_of",
    "build_fastpath_workload",
    "group_feed",
    "publish_batched",
    "publish_batched_time",
    "publish_loop",
    "publish_loop_time",
    "sensorscope_catalog",
    "snapshot",
    "stats_equal",
]
