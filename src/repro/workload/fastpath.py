"""Matching-heavy CBN publish workload for the fast-path benchmarks.

One deterministic generator shared by ``benchmarks/test_microbench.py``
and ``tools/bench_publish.py`` so the pytest speedup gate and the CI
``BENCH_publish.json`` artifact measure the *same* workload: many
SensorScope streams, hundreds of filtered/projecting subscriptions
spread over a sizeable tree, and a feed replayed from each stream's
publisher.  This is the regime the per-stream routing index targets —
the naive path scans every routing entry behind an interface while the
indexed path only touches the datagram's own stream bucket.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.cbn.datagram import Datagram
from repro.cbn.filters import ALL_ATTRIBUTES, Filter, Profile
from repro.cbn.network import ContentBasedNetwork
from repro.cql.predicates import Comparison, Conjunction
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.workload.sensorscope import sensorscope_catalog


@dataclass
class FastPathWorkload:
    """A CBN primed with subscriptions plus the feed to publish."""

    network: ContentBasedNetwork
    #: ``(datagram, origin broker)`` pairs, publisher-correct per stream.
    feed: List[Tuple[Datagram, int]]


def build_fastpath_workload(
    fast_path: bool,
    n_streams: int = 24,
    n_subscriptions: int = 1200,
    n_nodes: int = 120,
    n_datagrams: int = 200,
    wants_all_fraction: float = 0.2,
    filter_fraction: float = 0.7,
    seed: int = 7,
    batch_size: int = 1,
) -> FastPathWorkload:
    """Build the matching-heavy workload with the fast path on or off.

    Everything is seeded, so ``fast_path=True`` and ``fast_path=False``
    produce networks with byte-for-byte identical routing state and an
    identical feed — the only difference is the publish path taken.

    ``batch_size`` shapes the feed into contiguous same-stream runs of
    that length (a publisher emitting bursts), which is the regime the
    columnar batch path exploits: ``publish_many`` evaluates each run's
    bucket plans once per batch.  The default of 1 keeps the historical
    one-datagram-per-stream-pick feed.
    """
    rng = random.Random(seed)
    catalog = sensorscope_catalog(n_streams, rng=random.Random(seed))
    streams = catalog.stream_names[:n_streams]
    topology = barabasi_albert(n_nodes, 2, rng)
    tree = DisseminationTree.minimum_spanning(topology)
    network = ContentBasedNetwork(tree, catalog.copy(), fast_path=fast_path)

    setup = random.Random(seed + 1)
    for stream in streams:
        network.advertise(stream, setup.randrange(n_nodes), catalog.get(stream))
    for index in range(n_subscriptions):
        stream = setup.choice(streams)
        attrs = [a.name for a in catalog.get(stream).attributes]
        if setup.random() < wants_all_fraction:
            projection = ALL_ATTRIBUTES
        else:
            width = setup.randint(1, min(3, len(attrs)))
            projection = frozenset(setup.sample(attrs, k=width))
        filters = []
        if setup.random() < filter_fraction:
            atom = Comparison(
                setup.choice(attrs),
                setup.choice(["<=", ">="]),
                setup.randint(-5, 40),
            )
            filters.append(Filter(stream, Conjunction.from_atoms([atom])))
        network.subscribe(
            Profile({stream: projection}, filters),
            setup.randrange(n_nodes),
            f"u{index}",
        )

    data = random.Random(seed + 2)
    feed: List[Tuple[Datagram, int]] = []
    while len(feed) < n_datagrams:
        stream = data.choice(streams)
        origin = network.publishers_of(stream)[0]
        attrs = catalog.get(stream).attributes
        for __ in range(min(batch_size, n_datagrams - len(feed))):
            payload = {a.name: data.randint(-5, 40) for a in attrs}
            feed.append((Datagram(stream, payload, float(len(feed))), origin))
    return FastPathWorkload(network, feed)
