"""A synthetic SensorScope-like sensor network dataset.

The paper's experiments use 63 streams from the SensorScope project
(EPFL), "which measures key environmental data such as air temperature
and humidity etc.", replayed by timestamp.  The real dataset is not
redistributable, so this module generates the closest synthetic
equivalent: 63 stations publishing the standard SensorScope measurement
channels, with diurnal cycles plus seeded noise, replayed in global
timestamp order.  The evaluation only relies on the streams' *schemas,
rates and popularity* (queries are drawn randomly over them), which the
substitute preserves.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence

from repro.cbn.datagram import Datagram
from repro.cql.schema import Attribute, Catalog, StreamSchema

#: The measurement channels of a SensorScope station (name, type, lo, hi).
CHANNELS = (
    ("station", "int", 0, 62),
    ("ambient_temperature", "float", -20.0, 45.0),
    ("surface_temperature", "float", -25.0, 60.0),
    ("relative_humidity", "float", 0.0, 100.0),
    ("solar_radiation", "float", 0.0, 1200.0),
    ("soil_moisture", "float", 0.0, 100.0),
    ("watermark", "float", 0.0, 200.0),
    ("rain_meter", "float", 0.0, 50.0),
    ("wind_speed", "float", 0.0, 40.0),
    ("wind_direction", "float", 0.0, 360.0),
    ("timestamp", "timestamp", None, None),
)

DEFAULT_STREAM_COUNT = 63


def stream_name(index: int) -> str:
    """Canonical stream name of station ``index`` (``"ss00"``...)."""
    return f"ss{index:02d}"


def sensorscope_catalog(
    n_streams: int = DEFAULT_STREAM_COUNT,
    rng: Optional[random.Random] = None,
    min_rate: float = 0.5,
    max_rate: float = 4.0,
) -> Catalog:
    """Build the catalog of ``n_streams`` station streams.

    Per-stream tuple rates are drawn uniformly from
    ``[min_rate, max_rate]`` (stations report at different intervals in
    the real deployment too).
    """
    rng = rng or random.Random(0)
    catalog = Catalog()
    for index in range(n_streams):
        attributes = [
            Attribute(name, type_, lo, hi) for name, type_, lo, hi in CHANNELS
        ]
        rate = rng.uniform(min_rate, max_rate)
        catalog.register(StreamSchema(stream_name(index), attributes, rate=rate))
    return catalog


class SensorScopeReplayer:
    """Generate a timestamp-ordered feed of synthetic measurements.

    Each station reports every ``1 / rate`` seconds with a small seeded
    phase offset; values follow diurnal sinusoids plus noise, clamped
    to the channel domains.
    """

    def __init__(
        self,
        catalog: Catalog,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._catalog = catalog
        self._rng = rng or random.Random(0)
        self._streams = sorted(
            (schema for schema in catalog if schema.name.startswith("ss")),
            key=lambda s: s.name,
        )
        self._phases = {
            schema.name: self._rng.uniform(0.0, 1.0 / schema.rate)
            for schema in self._streams
        }

    def feed(self, duration: float) -> List[Datagram]:
        """All measurements in ``[0, duration)``, timestamp ordered."""
        out: List[Datagram] = []
        for schema in self._streams:
            interval = 1.0 / schema.rate
            t = self._phases[schema.name]
            station = int(schema.name[2:])
            while t < duration:
                out.append(self._measurement(schema.name, station, t))
                t += interval
        out.sort(key=lambda d: d.timestamp)
        return out

    def _measurement(self, stream: str, station: int, t: float) -> Datagram:
        day_phase = 2.0 * math.pi * (t % 86400.0) / 86400.0
        rng = self._rng
        temp = (
            15.0
            + 10.0 * math.sin(day_phase - math.pi / 2)
            + rng.gauss(0.0, 1.5)
            + station * 0.05
        )
        payload = {
            "station": station,
            "ambient_temperature": _clamp(temp, -20.0, 45.0),
            "surface_temperature": _clamp(temp + rng.gauss(2.0, 2.0), -25.0, 60.0),
            "relative_humidity": _clamp(
                70.0 - 20.0 * math.sin(day_phase - math.pi / 2) + rng.gauss(0, 5),
                0.0,
                100.0,
            ),
            "solar_radiation": _clamp(
                max(0.0, 800.0 * math.sin(day_phase)) + rng.gauss(0, 30),
                0.0,
                1200.0,
            ),
            "soil_moisture": _clamp(40.0 + rng.gauss(0, 3), 0.0, 100.0),
            "watermark": _clamp(100.0 + rng.gauss(0, 10), 0.0, 200.0),
            "rain_meter": _clamp(max(0.0, rng.gauss(-2, 3)), 0.0, 50.0),
            "wind_speed": _clamp(abs(rng.gauss(5, 4)), 0.0, 40.0),
            "wind_direction": rng.uniform(0.0, 360.0),
            "timestamp": t,
        }
        return Datagram(stream, payload, t)


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))
