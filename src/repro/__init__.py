"""COSMOS — a reproduction of "Rethinking the Design of Distributed
Stream Processing Systems" (Zhou, Aberer, Salehi, Tan — ICDE 2008).

COSMOS processes large numbers of continuous queries over widely
distributed stream sources by replacing point-to-point transfer with a
content-based network (CBN), and by merging overlapping queries into
representative queries whose result streams the CBN splits back apart.

Layer map (bottom up):

* :mod:`repro.cql` — the CQL-like continuous query language;
* :mod:`repro.overlay` — topologies, dissemination trees, the adaptive
  overlay optimizer;
* :mod:`repro.cbn` — the content-based network (profiles, routing,
  early projection, schema distribution);
* :mod:`repro.spe` — the pluggable stream processing engine;
* :mod:`repro.core` — the query layer: containment, merging, profile
  composition, cost estimation, incremental greedy grouping;
* :mod:`repro.system` — whole-system simulation, query distribution,
  fault tolerance, the delivery cost model;
* :mod:`repro.workload` — SensorScope-like and auction workloads plus
  the random query generator;
* :mod:`repro.experiments` — the harness regenerating every figure and
  table of the paper's evaluation.
"""

from __future__ import annotations

from repro.cbn import ContentBasedNetwork, Datagram, Filter, Profile
from repro.cql import ContinuousQuery, parse_query, to_cql
from repro.cql.schema import Attribute, Catalog, StreamSchema
from repro.core import (
    CostModel,
    GroupingOptimizer,
    QueryManager,
    contains,
    merge_queries,
    representative,
    result_profile,
    source_profile,
)
from repro.overlay import DisseminationTree, Topology, barabasi_albert
from repro.spe import StreamProcessingEngine
from repro.system import CosmosSystem

__version__ = "0.1.0"

__all__ = [
    "Attribute",
    "Catalog",
    "ContentBasedNetwork",
    "ContinuousQuery",
    "CosmosSystem",
    "CostModel",
    "Datagram",
    "DisseminationTree",
    "Filter",
    "GroupingOptimizer",
    "Profile",
    "QueryManager",
    "StreamProcessingEngine",
    "StreamSchema",
    "Topology",
    "barabasi_albert",
    "contains",
    "merge_queries",
    "parse_query",
    "representative",
    "result_profile",
    "source_profile",
    "to_cql",
]
