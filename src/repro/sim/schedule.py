"""Seeded chaos schedules: feeds, link perturbation, fault plans.

A chaos schedule is an explicit, fully resolved list of timed events —
tuple injections (post link-perturbation) and broker/processor crash
events — that the :mod:`repro.sim.network` layer executes through the
:class:`~repro.system.events.EventSimulator`.  Resolving every random
choice at *generation* time is what makes schedules first-class values:
the same seed always yields the same schedule, a failing schedule can
be serialised into a CI log line, and the shrinker
(:func:`repro.sim.trace.shrink_schedule`) can delete events without
consulting any RNG.

Link perturbation models the *source links* (a source's uplink to its
attachment broker) as lossy: each source stream gets per-link delay,
drop and duplication parameters drawn from the seeded RNG, applied to
its pristine periodic feed.  Perturbed tuples re-sort by their
effective arrival time, so delay skew also reorders tuples across
streams.  Inside the CBN, publication stays atomic — that is what
keeps the delivery oracle exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

PayloadItems = Tuple[Tuple[str, object], ...]


@dataclass(frozen=True)
class InjectEvent:
    """Publish one source tuple at ``time`` (its effective timestamp).

    Recovery-mode schedules additionally carry the uplink transport
    metadata: ``seq`` is the tuple's per-stream sequence number and
    ``sent`` its original (pristine) send time — the application
    timestamp the receiver publishes with.  Both stay ``None`` in lossy
    mode, where rendering and execution are unchanged.
    """

    time: float
    stream: str
    payload: PayloadItems
    duplicate: bool = False
    seq: Optional[int] = None
    sent: Optional[float] = None

    def render(self) -> str:
        items = ",".join(f"{k}={v!r}" for k, v in self.payload)
        tag = " dup" if self.duplicate else ""
        if self.seq is not None:
            tag += f" seq={self.seq}"
        return f"inject t={self.time:g} {self.stream}[{items}]{tag}"


@dataclass(frozen=True)
class DropEvent:
    """A tuple the lossy source link ate; executed as a no-op record.

    In recovery mode the drop still *was* a send: ``seq``, ``payload``
    and ``sent`` let the executor record it on the sender's uplink so a
    later NACK can retransmit exactly what the wire ate.
    """

    time: float
    stream: str
    seq: Optional[int] = None
    payload: Optional[PayloadItems] = None
    sent: Optional[float] = None

    def render(self) -> str:
        tag = f" seq={self.seq}" if self.seq is not None else ""
        return f"drop t={self.time:g} {self.stream}{tag}"


@dataclass(frozen=True)
class PunctuationEvent:
    """Source punctuation: ``stream`` has sent everything up to ``top``.

    Recovery-mode schedules emit one per stream at the end of the main
    phase, so a *trailing* drop (no higher sequence number ever arrives
    to expose the gap) is still detected and healed before the
    convergence epilogue — the classic source-heartbeat/FIN trick of
    upstream-backup designs.
    """

    time: float
    stream: str
    top: int

    def render(self) -> str:
        return f"punct t={self.time:g} {self.stream} seq<={self.top}"


@dataclass(frozen=True)
class FaultEvent:
    """Crash ``node`` at ``time``; repair runs immediately (fail-and-repair)."""

    time: float
    kind: str  # "broker" | "processor"
    node: int

    def render(self) -> str:
        return f"fail_{self.kind} t={self.time:g} node={self.node}"


@dataclass(frozen=True)
class MigrationEvent:
    """A load-management probe at ``time``.

    ``kind`` is ``"scan"`` (feed the hotspot detector a load snapshot
    and migrate whatever newly crossed the threshold) or
    ``"rebalance"`` (unconditionally move the busiest live processor's
    hottest group — the forced probe every migration-mode schedule
    carries so each seed exercises at least one full live migration).
    The probe only *triggers* the protocol; the migration's own timers
    (prepare, drain, cutover, retries) are scheduled by the executor.
    """

    time: float
    kind: str  # "scan" | "rebalance"

    def render(self) -> str:
        return f"migrate t={self.time:g} {self.kind}"


ChaosEvent = object  # InjectEvent | DropEvent | FaultEvent | PunctuationEvent | MigrationEvent


@dataclass
class ChaosSchedule:
    """A resolved, time-ordered chaos schedule plus its provenance."""

    seed: int
    events: List[ChaosEvent] = field(default_factory=list)

    @property
    def injects(self) -> List[InjectEvent]:
        return [e for e in self.events if isinstance(e, InjectEvent)]

    @property
    def faults(self) -> List[FaultEvent]:
        return [e for e in self.events if isinstance(e, FaultEvent)]

    def render(self) -> str:
        lines = [f"schedule seed={self.seed} events={len(self.events)}"]
        lines.extend(f"  {event.render()}" for event in self.events)
        return "\n".join(lines)


@dataclass(frozen=True)
class LinkModel:
    """Lossy-link parameters of one source's uplink."""

    max_delay: float
    drop_p: float
    dup_p: float


def _sorted_payload(payload: Dict[str, object]) -> PayloadItems:
    return tuple(sorted(payload.items()))


def perturb_feed(
    pristine: Sequence[Tuple[float, str, Dict[str, object]]],
    links: Dict[str, LinkModel],
    rng: random.Random,
) -> List[ChaosEvent]:
    """Apply per-link delay/drop/duplication to a pristine feed.

    ``pristine`` is a list of ``(time, stream, payload)`` — or, for
    recovery-mode schedules, ``(time, stream, payload, seq)``, in which
    case every resulting event is annotated with the tuple's sequence
    number and original send time (drops keep the payload so the
    sender can retransmit).  The result is the surviving injections (at
    their delayed effective times, with duplicates) plus drop records,
    sorted by effective time.  Draw order is fixed per tuple (drop,
    delay, dup, dup-delay) so the perturbation of one tuple never
    shifts another's randomness — and is identical with and without
    sequence annotations, so the recovery flag never perturbs the
    lossy-mode schedule.
    """
    events: List[ChaosEvent] = []
    for item in pristine:
        time, stream, payload = item[0], item[1], item[2]
        seq = item[3] if len(item) > 3 else None
        sent = time if seq is not None else None
        link = links.get(stream, LinkModel(0.0, 0.0, 0.0))
        dropped = rng.random() < link.drop_p
        delay = rng.uniform(0.0, link.max_delay) if link.max_delay else 0.0
        duplicated = rng.random() < link.dup_p
        dup_delay = rng.uniform(0.0, link.max_delay) if link.max_delay else 0.0
        items = _sorted_payload(payload)
        if dropped:
            if seq is None:
                events.append(DropEvent(time, stream))
            else:
                events.append(DropEvent(time, stream, seq, items, sent))
            continue
        events.append(
            InjectEvent(time + delay, stream, items, seq=seq, sent=sent)
        )
        if duplicated:
            events.append(
                InjectEvent(
                    time + delay + dup_delay, stream, items,
                    duplicate=True, seq=seq, sent=sent,
                )
            )
    events.sort(key=lambda e: e.time)
    return events


def plan_faults(
    rng: random.Random,
    n_faults: int,
    window: Tuple[float, float],
    broker_candidates: Sequence[int],
    processor_candidates: Sequence[int],
    processor_fault_p: float = 0.35,
) -> List[FaultEvent]:
    """Plan ``n_faults`` crash events inside the time ``window``.

    Victims are resolved now: broker victims are drawn without
    replacement from ``broker_candidates`` (pure brokers — never
    sources, users or processors); processor victims from
    ``processor_candidates``, always leaving at least one processor
    alive.  A broker crash planned against a node the repair already
    found partitioned is recorded as *refused* at execution time — the
    plan does not need to predict reachability.
    """
    lo, hi = window
    brokers = list(broker_candidates)
    processors = list(processor_candidates)
    faults: List[FaultEvent] = []
    for __ in range(n_faults):
        take_processor = (
            len(processors) > 1 and rng.random() < processor_fault_p
        )
        if take_processor:
            victim = processors.pop(rng.randrange(len(processors)))
            kind = "processor"
        elif brokers:
            victim = brokers.pop(rng.randrange(len(brokers)))
            kind = "broker"
        else:
            break
        faults.append(FaultEvent(rng.uniform(lo, hi), kind, victim))
    faults.sort(key=lambda e: e.time)
    return faults


def merge_events(*groups: Sequence[ChaosEvent]) -> List[ChaosEvent]:
    """Merge event groups into one schedule, stably sorted by time."""
    merged: List[ChaosEvent] = []
    for group in groups:
        merged.extend(group)
    merged.sort(key=lambda e: e.time)
    return merged
