"""The virtual network: chaos schedules executed against twin systems.

:class:`VirtualNetwork` wraps a pair of :class:`CosmosSystem` twins —
one routing through the CBN's indexed fast path, one through the naive
reference scan — and drives both through the *same* resolved chaos
schedule via the :class:`~repro.system.events.EventSimulator`'s
``step()`` API.  Tuple injections go end to end through
``CosmosSystem.publish``; crash events route through the real
fault-tolerance entry points (``fail_broker`` / ``fail_processor``),
so the chaos harness exercises exactly the repair code production
would run, never a simulation-only shortcut.

A crash whose repair finds the survivors physically partitioned is
*refused* (``FaultError``) and recorded as such — a legitimate outcome,
not a violation.  The twins share one topology and tree, so a refusal
in one twin must occur in the other; divergence there is itself a bug
and raises immediately.

Every executed event appends one canonical line to the run's
:class:`~repro.sim.trace.ChaosTrace` (payloads pre-sorted by the
schedule layer, counters instead of delivery lists), which is what
makes replays byte-identical across processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cbn.datagram import Datagram
from repro.sim.schedule import ChaosEvent, DropEvent, FaultEvent, InjectEvent
from repro.sim.trace import ChaosTrace
from repro.system.cosmos import CosmosSystem
from repro.system.events import EventSimulator
from repro.system.fault import FaultError, fail_broker, fail_processor


class ChaosExecutionError(Exception):
    """Raised when the twins diverge structurally mid-run (a harness bug
    or a nondeterministic repair path — either way, not a normal oracle
    violation)."""


@dataclass
class ChaosCounters:
    """What a run did, for CI gates and BENCH output."""

    injects: int = 0
    duplicates: int = 0
    drops: int = 0
    faults_applied: int = 0
    faults_refused: int = 0
    deliveries: int = 0

    def as_dict(self) -> dict:
        return {
            "injects": self.injects,
            "duplicates": self.duplicates,
            "drops": self.drops,
            "faults_applied": self.faults_applied,
            "faults_refused": self.faults_refused,
            "deliveries": self.deliveries,
        }


@dataclass
class VirtualNetwork:
    """Twin COSMOS systems driven by one chaos schedule.

    ``build`` provisions one complete system (topology, tree, sources,
    queries) and must be deterministic in everything except the
    ``fast_path`` flag it receives — the twins *must* be structurally
    identical for the fast-vs-naive oracle to be meaningful.
    """

    build: Callable[..., CosmosSystem]
    check_fast_path: bool = True
    primary: CosmosSystem = field(init=False)
    shadow: Optional[CosmosSystem] = field(init=False)
    trace: ChaosTrace = field(init=False, default_factory=ChaosTrace)
    counters: ChaosCounters = field(init=False, default_factory=ChaosCounters)
    #: The tuples that actually entered the system (post-perturbation,
    #: duplicates included), in injection order — the oracle's input.
    effective_feed: List[Datagram] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.primary = self.build(fast_path=True)
        self.shadow = self.build(fast_path=False) if self.check_fast_path else None

    @property
    def systems(self) -> List[CosmosSystem]:
        return [self.primary] + ([self.shadow] if self.shadow else [])

    def routing_epoch(self) -> int:
        return self.primary.network.routing_epoch

    def execute(self, events: Sequence[ChaosEvent]) -> ChaosCounters:
        """Run ``events`` through the simulator in global time order."""
        sim = EventSimulator()
        for event in events:
            sim.schedule(event.time, lambda e=event: self._apply(e))
        while sim.step() is not None:
            pass
        return self.counters

    # -- event application -------------------------------------------------------

    def _apply(self, event: ChaosEvent) -> None:
        if isinstance(event, InjectEvent):
            self._apply_inject(event)
        elif isinstance(event, DropEvent):
            self.counters.drops += 1
            self.trace.record(event.render())
        elif isinstance(event, FaultEvent):
            self._apply_fault(event)
        else:  # pragma: no cover - schedule layer only emits the above
            raise ChaosExecutionError(f"unknown chaos event {event!r}")

    def _apply_inject(self, event: InjectEvent) -> None:
        payload = dict(event.payload)
        delivered = len(self.primary.publish(event.stream, payload, event.time))
        if self.shadow is not None:
            self.shadow.publish(event.stream, dict(event.payload), event.time)
        self.effective_feed.append(
            Datagram(event.stream, payload, event.time)
        )
        self.counters.injects += 1
        if event.duplicate:
            self.counters.duplicates += 1
        self.counters.deliveries += delivered
        self.trace.record(f"{event.render()} -> {delivered} deliveries")

    def _apply_fault(self, event: FaultEvent) -> None:
        outcomes = []
        for system in self.systems:
            try:
                if event.kind == "broker":
                    fail_broker(system, event.node)
                else:
                    fail_processor(system, event.node)
                outcomes.append("applied")
            except FaultError as exc:
                outcomes.append(f"refused ({exc})")
        if len(set(outcomes)) > 1:
            raise ChaosExecutionError(
                f"twins diverged on {event.render()}: {outcomes}"
            )
        outcome = outcomes[0]
        if outcome == "applied":
            self.counters.faults_applied += 1
        else:
            self.counters.faults_refused += 1
        self.trace.record(f"{event.render()} -> {outcome}")
