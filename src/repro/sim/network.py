"""The virtual network: chaos schedules executed against twin systems.

:class:`VirtualNetwork` wraps a pair of :class:`CosmosSystem` twins —
one routing through the CBN's indexed fast path, one through the naive
reference scan — and drives both through the *same* resolved chaos
schedule via the :class:`~repro.system.events.EventSimulator`'s
``step()`` API.  Tuple injections go end to end through
``CosmosSystem.publish``; crash events route through the real
fault-tolerance entry points (``fail_broker`` / ``fail_processor``),
so the chaos harness exercises exactly the repair code production
would run, never a simulation-only shortcut.

A crash whose repair finds the survivors physically partitioned is
*refused* (``FaultError``) and recorded as such — a legitimate outcome,
not a violation.  The twins share one topology and tree, so a refusal
in one twin must occur in the other; divergence there is itself a bug
and raises immediately.

Every executed event appends one canonical line to the run's
:class:`~repro.sim.trace.ChaosTrace` (payloads pre-sorted by the
schedule layer, counters instead of delivery lists), which is what
makes replays byte-identical across processes.

**Recovery mode** (``recovery=True``) runs the same schedule through
the self-healing path of :mod:`repro.system.reliability` instead of
booking losses:

* injections travel a reliable sequenced uplink — one shared protocol
  brain decides releases/suppressions once and applies them to both
  twins, so transport nondeterminism cannot diverge them;
* drops are recorded on the sender and healed by receiver-driven NACK /
  retransmit timers with capped exponential backoff; end-of-phase
  source punctuation (``seq<=top``) exposes trailing drops that no
  higher arrival would ever reveal;
* released tuples pass through a front-end *ordering stage*: they are
  buffered during the batch and published to the SPE at batch end in
  global send-time order.  The SPE engine enforces non-decreasing
  timestamps across *all* streams, so a retransmission carrying its
  original (old) send time must not be pushed after another stream
  already advanced the engine clock — the ordering stage is the K-way
  merge that restores global timestamp order, with the batch boundary
  (quiescence) as its watermark;
* crash events merely mark the node dead; a periodic heartbeat sweep
  (implicit heartbeats for live nodes) lets the
  :class:`~repro.system.reliability.FailureDetector` suspect it after
  its lease expires, and only then does the supervisor run
  ``fail_broker``/``fail_processor`` — with retry/backoff when a repair
  raises, and degraded-mode quarantine when the survivors are
  physically partitioned.

All timers ride the same :class:`EventSimulator`, scheduled in a fixed
order, so recovery traces replay byte-identically too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cbn.datagram import Datagram
from repro.sim.schedule import (
    ChaosEvent,
    DropEvent,
    FaultEvent,
    InjectEvent,
    MigrationEvent,
    PunctuationEvent,
)
from repro.sim.trace import ChaosTrace
from repro.system.cosmos import CosmosSystem
from repro.system.events import EventSimulator
from repro.system.fault import FaultError, fail_broker, fail_processor
from repro.system.loadmgr import (
    GroupMigration,
    LoadParams,
    LoadState,
    MigrationChannel,
    attach_load_manager,
    capture_group_state,
    choose_target,
    cutover_group,
    quarantine_for_migration,
    resume_after_migration,
)
from repro.system.monitor import SystemMonitor
from repro.system.reliability import (
    ReliabilityParams,
    ReliabilityState,
    attach_reliability,
    quarantine_partitioned,
)


class ChaosExecutionError(Exception):
    """Raised when the twins diverge structurally mid-run (a harness bug
    or a nondeterministic repair path — either way, not a normal oracle
    violation)."""


@dataclass
class ChaosCounters:
    """What a run did, for CI gates and BENCH output."""

    injects: int = 0
    duplicates: int = 0
    drops: int = 0
    faults_applied: int = 0
    faults_refused: int = 0
    deliveries: int = 0

    def as_dict(self) -> dict:
        return {
            "injects": self.injects,
            "duplicates": self.duplicates,
            "drops": self.drops,
            "faults_applied": self.faults_applied,
            "faults_refused": self.faults_refused,
            "deliveries": self.deliveries,
        }


@dataclass
class VirtualNetwork:
    """Twin COSMOS systems driven by one chaos schedule.

    ``build`` provisions one complete system (topology, tree, sources,
    queries) and must be deterministic in everything except the
    ``fast_path`` flag it receives — the twins *must* be structurally
    identical for the fast-vs-naive oracle to be meaningful.
    """

    build: Callable[..., CosmosSystem]
    check_fast_path: bool = True
    #: Run the schedule through the self-healing reliability path.
    recovery: bool = False
    #: Execute migration probes (requires ``recovery``: zero-loss
    #: migration rides the ordering stage's deferred publication).
    migrate: bool = False
    params: Optional[ReliabilityParams] = None
    load_params: Optional[LoadParams] = None
    primary: CosmosSystem = field(init=False)
    shadow: Optional[CosmosSystem] = field(init=False)
    trace: ChaosTrace = field(init=False, default_factory=ChaosTrace)
    counters: ChaosCounters = field(init=False, default_factory=ChaosCounters)
    #: The tuples that actually entered the system (post-perturbation,
    #: duplicates included; post-release in recovery mode), in
    #: injection order — the oracle's input.
    effective_feed: List[Datagram] = field(init=False, default_factory=list)
    #: Shared protocol brain (primary's ReliabilityState) in recovery mode.
    state: Optional[ReliabilityState] = field(init=False, default=None)
    #: Shared load-management brain in migration mode; ``None`` keeps the
    #: whole migration machinery inert (``system.load`` stays unset).
    load: Optional[LoadState] = field(init=False, default=None)
    #: Simulated time of the last self-healing action (repair applied,
    #: retransmission released, gap abandoned); ``None`` = never needed.
    last_recovery_time: Optional[float] = field(init=False, default=None)

    def __post_init__(self) -> None:
        if self.migrate and not self.recovery:
            raise ChaosExecutionError(
                "migrate=True requires recovery=True (zero-loss "
                "migration rides the recovery ordering stage)"
            )
        self.primary = self.build(fast_path=True)
        self.shadow = self.build(fast_path=False) if self.check_fast_path else None
        self._crashed: Dict[int, str] = {}
        #: Ordering stage: released-but-unpublished (sent, stream, seq,
        #: payload), flushed to the SPE in send-time order at batch end.
        self._pending: List[tuple] = []
        if self.recovery:
            self.state = attach_reliability(self.primary, self.params)
            if self.shadow is not None:
                attach_reliability(self.shadow, self.state.params)
            for node in self.primary.tree.nodes:
                self.state.detector.register(node, 0.0)
        if self.migrate:
            self.load = attach_load_manager(self.primary, self.load_params)
            if self.shadow is not None:
                attach_load_manager(self.shadow, state=self.load)

    @property
    def systems(self) -> List[CosmosSystem]:
        return [self.primary] + ([self.shadow] if self.shadow else [])

    def routing_epoch(self) -> int:
        return self.primary.network.routing_epoch

    def execute(self, events: Sequence[ChaosEvent]) -> ChaosCounters:
        """Run ``events`` through the simulator in global time order.

        In recovery mode, heartbeat sweeps are pre-scheduled over the
        batch's time range (plus a lease of slack so a crash near the
        end is still detected) — data events first, sweeps second, so
        equal-time ties always resolve the same way.
        """
        sim = EventSimulator()
        for event in events:
            sim.schedule(event.time, lambda e=event: self._apply(e, sim))
        if self.recovery and events:
            self._schedule_sweeps(sim, events)
        while sim.step() is not None:
            pass
        if self.recovery:
            self._flush_deliveries()
        return self.counters

    def _schedule_sweeps(
        self, sim: EventSimulator, events: Sequence[ChaosEvent]
    ) -> None:
        params = self.state.params
        period = params.heartbeat_period
        first = min(event.time for event in events)
        last = max(event.time for event in events)
        horizon = last + params.lease + 2.0 * period
        tick = max(1, int(first // period))
        while tick * period <= horizon:
            sim.schedule(tick * period, lambda s=sim: self._sweep(s))
            tick += 1

    # -- event application -------------------------------------------------------

    def _apply(self, event: ChaosEvent, sim: EventSimulator) -> None:
        if isinstance(event, InjectEvent):
            self._apply_inject(event, sim)
        elif isinstance(event, DropEvent):
            self._apply_drop(event)
        elif isinstance(event, FaultEvent):
            self._apply_fault(event)
        elif isinstance(event, PunctuationEvent):
            self._apply_punctuation(event, sim)
        elif isinstance(event, MigrationEvent):
            self._apply_migration(event, sim)
        else:  # pragma: no cover - schedule layer only emits the above
            raise ChaosExecutionError(f"unknown chaos event {event!r}")

    def _apply_inject(self, event: InjectEvent, sim: EventSimulator) -> None:
        if self.recovery and event.seq is not None:
            self._apply_inject_reliable(event, sim)
            return
        payload = dict(event.payload)
        delivered = len(self.primary.publish(event.stream, payload, event.time))
        if self.shadow is not None:
            self.shadow.publish(event.stream, dict(event.payload), event.time)
        self.effective_feed.append(
            Datagram(event.stream, payload, event.time)
        )
        self.counters.injects += 1
        if event.duplicate:
            self.counters.duplicates += 1
        self.counters.deliveries += delivered
        self.trace.record(f"{event.render()} -> {delivered} deliveries")

    def _apply_drop(self, event: DropEvent) -> None:
        self.counters.drops += 1
        if self.recovery and event.seq is not None:
            # The wire ate the tuple but the sender did send it: retain
            # it for retransmission (the gap shows up when a higher
            # sequence number reaches the receiver).
            self.state.uplink(event.stream).record(
                event.seq, dict(event.payload or ()), event.sent or event.time
            )
        self.trace.record(event.render())

    def _apply_fault(self, event: FaultEvent) -> None:
        if self.recovery:
            # Nothing repairs here: the node just goes silent, and the
            # heartbeat sweep must notice on its own.
            self._crashed[event.node] = event.kind
            self.trace.record(f"{event.render()} -> crashed")
            return
        outcomes = []
        for system in self.systems:
            try:
                if event.kind == "broker":
                    fail_broker(system, event.node)
                else:
                    fail_processor(system, event.node)
                outcomes.append("applied")
            except FaultError as exc:
                outcomes.append(f"refused ({exc})")
        if len(set(outcomes)) > 1:
            raise ChaosExecutionError(
                f"twins diverged on {event.render()}: {outcomes}"
            )
        outcome = outcomes[0]
        if outcome == "applied":
            self.counters.faults_applied += 1
        else:
            self.counters.faults_refused += 1
        self.trace.record(f"{event.render()} -> {outcome}")

    # -- reliable uplink ----------------------------------------------------------

    def _apply_inject_reliable(
        self, event: InjectEvent, sim: EventSimulator
    ) -> None:
        stream = event.stream
        payload = dict(event.payload)
        sent = event.sent if event.sent is not None else event.time
        if not event.duplicate:
            self.state.uplink(stream).record(event.seq, payload, sent)
        offer = self.state.receiver(stream).offer(event.seq, payload, sent)
        self.counters.injects += 1
        if event.duplicate:
            self.counters.duplicates += 1
        released = self._release(stream, offer.released)
        for gap in offer.fresh_gaps:
            self._schedule_nack(sim, stream, gap, attempt=1)
        tag = " suppressed" if offer.duplicate else ""
        self.trace.record(
            f"{event.render()} -> {released} released{tag}"
        )

    def _apply_punctuation(
        self, event: PunctuationEvent, sim: EventSimulator
    ) -> None:
        if not self.recovery:
            self.trace.record(event.render())
            return
        fresh = self.state.receiver(event.stream).announce(event.top)
        for gap in fresh:
            self._schedule_nack(sim, event.stream, gap, attempt=1)
        self.trace.record(f"{event.render()} -> {len(fresh)} gaps")

    def _release(self, stream: str, released: Sequence[tuple]) -> int:
        """Stage receiver-released tuples for the batch-end flush.

        Releases are *transport*-ordered (per-stream sequence order) but
        may lag other streams in time, so publishing here would violate
        the SPE's cross-stream timestamp contract; the ordering stage
        (:meth:`_flush_deliveries`) publishes them in global send-time
        order once the batch quiesces.
        """
        for seq, payload, sent in released:
            self._pending.append((sent, stream, seq, dict(payload)))
        return len(released)

    def _flush_deliveries(self) -> None:
        """Publish everything the ordering stage holds, in time order."""
        if not self._pending:
            return
        self._pending.sort(key=lambda item: (item[0], item[1], item[2]))
        delivered = 0
        for sent, stream, seq, payload in self._pending:
            delivered += len(
                self.primary.publish(stream, dict(payload), sent, seq=seq)
            )
            if self.shadow is not None:
                self.shadow.publish(stream, dict(payload), sent, seq=seq)
            self.effective_feed.append(
                Datagram(stream, dict(payload), sent, seq)
            )
        self.counters.deliveries += delivered
        self.trace.record(
            f"flush {len(self._pending)} tuples -> {delivered} deliveries"
        )
        self._pending.clear()

    def _schedule_nack(
        self, sim: EventSimulator, stream: str, gap: int, attempt: int
    ) -> None:
        params = self.state.params
        delay = min(
            params.nack_delay * (params.nack_backoff ** (attempt - 1)),
            params.nack_cap,
        )
        sim.schedule_in(delay, lambda: self._nack(sim, stream, gap, attempt))

    def _nack(
        self, sim: EventSimulator, stream: str, gap: int, attempt: int
    ) -> None:
        receiver = self.state.receiver(stream)
        if not receiver.outstanding(gap):
            return  # healed (or abandoned) while the timer was pending
        self.state.counters.nacks_sent += 1
        item = self.state.uplink(stream).retransmit(gap)
        if item is None:
            # The sender never sent this number (a shrunken schedule cut
            # the send): the gap can never heal — abandon immediately.
            self._abandon(sim.now, stream, gap)
            return
        payload, sent = item
        self.state.counters.retransmits += 1
        self.trace.record(
            f"nack t={sim.now:g} {stream} seq={gap} attempt={attempt}"
        )
        sim.schedule_in(
            self.state.params.retransmit_rtt,
            lambda: self._retransmit_arrival(sim, stream, gap, payload, sent),
        )
        if attempt < self.state.params.max_nacks:
            self._schedule_nack(sim, stream, gap, attempt + 1)
        else:
            # Last NACK in flight; if even its retransmission is lost
            # the gap is abandoned when the final timer fires.
            sim.schedule_in(
                self.state.params.nack_cap,
                lambda: self._give_up(sim, stream, gap),
            )

    def _retransmit_arrival(
        self,
        sim: EventSimulator,
        stream: str,
        seq: int,
        payload: Dict[str, object],
        sent: float,
    ) -> None:
        offer = self.state.receiver(stream).offer(seq, payload, sent)
        released = self._release(stream, offer.released)
        if offer.released:
            self.last_recovery_time = sim.now
        tag = " suppressed" if offer.duplicate else ""
        self.trace.record(
            f"retransmit t={sim.now:g} {stream} seq={seq} -> "
            f"{released} released{tag}"
        )

    def _give_up(self, sim: EventSimulator, stream: str, gap: int) -> None:
        if self.state.receiver(stream).outstanding(gap):
            self._abandon(sim.now, stream, gap)

    def _abandon(self, now: float, stream: str, gap: int) -> None:
        released = self._release(stream, self.state.receiver(stream).abandon(gap))
        self.last_recovery_time = now
        self.trace.record(
            f"abandon t={now:g} {stream} seq={gap} -> {released} released"
        )

    # -- adaptive load management ---------------------------------------------------

    def _apply_migration(self, event: MigrationEvent, sim: EventSimulator) -> None:
        """Execute one load-management probe.

        ``scan`` feeds the hotspot detector a live-processor load
        snapshot and plans one migration per newly hot processor;
        ``rebalance`` unconditionally plans one off the busiest live
        processor that hosts any group.  All decisions read the primary
        only (the shared-brain pattern); mutations are applied to both
        twins inside :meth:`_plan_migration`.
        """
        if self.load is None:
            self.trace.record(f"{event.render()} -> inert")
            return
        loads = [
            load
            for load in SystemMonitor(self.primary).processor_loads()
            if load.node_id not in self._crashed
        ]
        if event.kind == "scan":
            hot = self.load.detector.observe(loads)
            names = ",".join(f"n{node}" for node in hot) or "-"
            self.trace.record(
                f"{event.render()} -> {len(hot)} hotspots [{names}]"
            )
            self.load.counters.hotspots_detected += len(hot)
            # Planning is deferred a tick: the probe only *decides*;
            # the protocol actions run as their own simulator events.
            for node in hot:
                sim.schedule_in(
                    0.0, lambda node=node: self._plan_migration(sim, node)
                )
            return
        candidates = [load for load in loads if load.groups > 0]
        if not candidates:
            self.trace.record(f"{event.render()} -> idle")
            return
        candidates.sort(key=lambda load: (-load.merged_rate, load.node_id))
        node = candidates[0].node_id
        self.trace.record(f"{event.render()} -> node={node}")
        sim.schedule_in(0.0, lambda: self._plan_migration(sim, node))

    def _plan_migration(self, sim: EventSimulator, source_node: int) -> None:
        """Quarantine the source's hottest group and start its move."""
        processor = self.primary.processors.get(source_node)
        if processor is None or source_node in self._crashed:
            self.trace.record(
                f"migrate_skip t={sim.now:g} node={source_node} reason=no-source"
            )
            return
        groups = processor.manager.groups
        if not groups:
            self.trace.record(
                f"migrate_skip t={sim.now:g} node={source_node} reason=no-group"
            )
            return
        group = max(
            groups, key=lambda g: (g.representative_rate, g.group_id)
        )
        key = f"{group.group_id}@n{source_node}"
        if key in self.load.active:
            self.trace.record(
                f"migrate_skip t={sim.now:g} node={source_node} reason=in-flight"
            )
            return
        exclude = set(self._crashed) | {source_node}
        target = choose_target(self.primary, group, exclude)
        if target is None:
            self.trace.record(
                f"migrate_skip t={sim.now:g} node={source_node} reason=no-target"
            )
            return
        quarantined: List[List[str]] = []
        for system in self.systems:
            quarantined.append(
                quarantine_for_migration(system, source_node, group.group_id)
            )
        if len({tuple(q) for q in quarantined}) > 1:
            raise ChaosExecutionError(
                f"twins diverged quarantining {key}: {quarantined}"
            )
        if not quarantined[0]:
            # Every member already degraded (e.g. partition-owned):
            # nothing was touched and there is nothing to move.
            self.trace.record(
                f"migrate_skip t={sim.now:g} node={source_node} reason=degraded"
            )
            return
        migration = GroupMigration(
            migration_id=f"m{self.load.counters.migrations_started}",
            group_id=group.group_id,
            source_node=source_node,
            target_node=target,
            members=list(quarantined[0]),
        )
        self.load.active[key] = migration
        self.load.counters.migrations_started += 1
        names = ",".join(migration.members) or "-"
        self.trace.record(
            f"migrate_start t={sim.now:g} group={migration.group_id} "
            f"n{source_node}->n{target} quarantined [{names}]"
        )
        sim.schedule_in(
            self.load.params.prepare_delay,
            lambda: self._drain_migration(sim, migration.key),
        )

    def _drain_migration(self, sim: EventSimulator, key: str) -> None:
        """Hand the group's state to the target over the channel."""
        migration = self.load.active.get(key)
        if migration is None:
            return
        if migration.source_node not in self.primary.processors:
            # The crash-repair path already re-homed the group's members
            # as fresh ACTIVE handles elsewhere; this move is obsolete.
            self._abort_migration(sim, key, "superseded")
            return
        if migration.source_node in self._crashed:
            self._abort_migration(sim, key, "source-lost")
            return
        chunks = capture_group_state(
            self.primary, migration.source_node, migration.group_id
        )
        if not chunks:
            self._abort_migration(sim, key, "superseded")
            return
        migration.channel = MigrationChannel(self.state.params)
        for chunk in chunks:
            migration.channel.send(chunk, sim.now)
        migration.start_drain()
        migration.chunks_sent = len(chunks)
        self.load.counters.state_chunks_sent += len(chunks)
        self.trace.record(
            f"drain t={sim.now:g} group={migration.group_id} "
            f"n{migration.source_node}->n{migration.target_node} "
            f"chunks={len(chunks)}"
        )
        sim.schedule_in(
            self.load.params.drain_delay,
            lambda: self._cutover_migration(sim, key, attempt=1),
        )

    def _cutover_migration(
        self, sim: EventSimulator, key: str, attempt: int
    ) -> None:
        """Close the channel gap-free and re-home the group, with
        capped-backoff retries while the target is down."""
        migration = self.load.active.get(key)
        if migration is None:
            return
        if migration.source_node not in self.primary.processors:
            self._abort_migration(sim, key, "superseded")
            return
        if migration.source_node in self._crashed:
            self._abort_migration(sim, key, "source-lost")
            return
        target_live = (
            migration.target_node in self.primary.processors
            and migration.target_node not in self._crashed
        )
        if not target_live:
            if attempt < self.load.params.max_migrate_attempts:
                params = self.load.params
                delay = min(
                    params.migrate_backoff
                    * (params.migrate_backoff_base ** (attempt - 1)),
                    params.migrate_cap,
                )
                self.load.counters.migrations_retried += 1
                self.trace.record(
                    f"migrate_retry t={sim.now:g} group={migration.group_id} "
                    f"target=n{migration.target_node} attempt={attempt + 1}"
                )
                sim.schedule_in(
                    delay,
                    lambda: self._cutover_migration(sim, key, attempt + 1),
                )
                return
            self._abort_migration(sim, key, "target-lost")
            return
        gaps = migration.channel.close(sim.now) if migration.channel else [0]
        if gaps:
            # Unreachable with the in-process channel; kept as the
            # protocol's defensive barrier (cutover only on a gap-free
            # punctuation, exactly like PR 4's uplink close).
            self._abort_migration(sim, key, "handoff-gaps")
            return
        migration.cut_over()
        moved: List[List[str]] = []
        for system in self.systems:
            moved.append(cutover_group(system, migration))
        if len({tuple(m) for m in moved}) > 1:
            raise ChaosExecutionError(
                f"twins diverged cutting over {key}: {moved}"
            )
        migration.complete()
        self.load.active.pop(key, None)
        self.load.counters.migrations_completed += 1
        self.last_recovery_time = sim.now
        names = ",".join(moved[0]) or "-"
        self.trace.record(
            f"cutover t={sim.now:g} group={migration.group_id} "
            f"n{migration.source_node}->n{migration.target_node} "
            f"moved [{names}]"
        )

    def _abort_migration(
        self, sim: EventSimulator, key: str, reason: str
    ) -> None:
        """Abort back to the source (or drop a superseded move)."""
        migration = self.load.active.get(key)
        if migration is None:
            return
        migration.abort()
        resumed: List[str] = []
        if reason != "superseded":
            outcomes: List[List[str]] = []
            for system in self.systems:
                outcomes.append(
                    resume_after_migration(
                        system, migration.source_node, migration.members
                    )
                )
            if len({tuple(r) for r in outcomes}) > 1:
                raise ChaosExecutionError(
                    f"twins diverged aborting {key}: {outcomes}"
                )
            resumed = outcomes[0]
        self.load.active.pop(key, None)
        self.load.counters.migrations_aborted += 1
        names = ",".join(resumed) or "-"
        self.trace.record(
            f"migrate_abort t={sim.now:g} group={migration.group_id} "
            f"n{migration.source_node}->n{migration.target_node} "
            f"{reason} resumed [{names}]"
        )

    # -- failure detection and repair ---------------------------------------------

    def _sweep(self, sim: EventSimulator) -> None:
        now = sim.now
        detector = self.state.detector
        for node in detector.monitored:
            if node not in self._crashed:
                detector.heartbeat(node, now)
        for node in detector.check(now):
            self.state.counters.nodes_suspected += 1
            self.trace.record(f"suspect t={now:g} node={node}")
            # cos: disable=COS602 (suspicion logged before repair on purpose)
            self._repair(sim, node, attempt=1)

    def _repair(self, sim: EventSimulator, node: int, attempt: int) -> None:
        kind = self._crashed.get(node, "broker")
        outcomes: List[str] = []
        errors: List[FaultError] = []
        for system in self.systems:
            try:
                if kind == "broker":
                    fail_broker(system, node)
                else:
                    fail_processor(system, node)
                outcomes.append("repaired")
            except FaultError as exc:
                outcomes.append(f"error ({exc})")
                errors.append(exc)
        if len(set(outcomes)) > 1:
            raise ChaosExecutionError(
                f"twins diverged repairing node {node}: {outcomes}"
            )
        if outcomes[0] == "repaired":
            self.counters.faults_applied += 1
            self.state.counters.repairs_applied += 1
            self.state.detector.deregister(node)
            self.last_recovery_time = sim.now
            self.trace.record(
                f"repair t={sim.now:g} fail_{kind} node={node} -> applied"
            )
            return
        if kind == "broker" and "partitioned" in str(errors[0]):
            self._degrade(sim, node)
            return
        if attempt < self.state.params.max_repair_attempts:
            self.state.counters.repairs_retried += 1
            self.trace.record(
                f"repair t={sim.now:g} fail_{kind} node={node} -> "
                f"retry {attempt + 1} ({errors[0]})"
            )
            sim.schedule_in(
                self.state.params.repair_backoff * attempt,
                lambda: self._repair(sim, node, attempt + 1),
            )
            return
        self.counters.faults_refused += 1
        self.state.detector.deregister(node)
        self.trace.record(
            f"repair t={sim.now:g} fail_{kind} node={node} -> "
            f"gave up ({errors[0]})"
        )

    def _degrade(self, sim: EventSimulator, node: int) -> None:
        """Partitioned survivors: quarantine instead of refusing."""
        quarantined: List[List[str]] = []
        for system in self.systems:
            quarantined.append(quarantine_partitioned(system, node))
        if len({tuple(q) for q in quarantined}) > 1:
            raise ChaosExecutionError(
                f"twins diverged degrading node {node}: {quarantined}"
            )
        self.counters.faults_applied += 1
        self.state.detector.deregister(node)
        self.last_recovery_time = sim.now
        names = ",".join(quarantined[0]) or "-"
        self.trace.record(
            f"repair t={sim.now:g} fail_broker node={node} -> "
            f"degraded [{names}]"
        )
