"""Deterministic chaos simulation: seeded fault injection with oracles.

Layered on the repo's own building blocks — the
:class:`~repro.system.events.EventSimulator` for global time ordering,
the real fault-tolerance entry points for crash/repair — this package
turns a single seed into a fully resolved chaos schedule (lossy source
links, broker/processor crashes), executes it against fast-path/naive
twin systems, and checks delivery against an oracle that computes
ground truth directly from the queries and the effective input feed.
Failing seeds replay byte-identically and shrink to minimal schedules.
"""

from __future__ import annotations

from repro.sim.network import ChaosCounters, ChaosExecutionError, VirtualNetwork
from repro.sim.oracle import (
    check_chronology,
    check_ground_truth,
    check_no_orphans,
    compare_systems,
    expected_results,
    pristine_feed_from_events,
)
from repro.sim.runner import (
    ChaosConfig,
    ChaosReport,
    build_system,
    generate_schedule,
    protected_nodes,
    query_ids,
    run_chaos,
    run_schedule,
    shrink_failing_schedule,
)
from repro.sim.schedule import (
    ChaosSchedule,
    DropEvent,
    FaultEvent,
    InjectEvent,
    LinkModel,
    MigrationEvent,
    PunctuationEvent,
    merge_events,
    perturb_feed,
    plan_faults,
)
from repro.sim.trace import ChaosTrace, shrink_schedule

__all__ = [
    "ChaosConfig",
    "ChaosCounters",
    "ChaosExecutionError",
    "ChaosReport",
    "ChaosSchedule",
    "ChaosTrace",
    "DropEvent",
    "FaultEvent",
    "InjectEvent",
    "LinkModel",
    "MigrationEvent",
    "PunctuationEvent",
    "VirtualNetwork",
    "build_system",
    "check_chronology",
    "check_ground_truth",
    "check_no_orphans",
    "compare_systems",
    "expected_results",
    "generate_schedule",
    "merge_events",
    "perturb_feed",
    "plan_faults",
    "pristine_feed_from_events",
    "protected_nodes",
    "query_ids",
    "run_chaos",
    "run_schedule",
    "shrink_failing_schedule",
    "shrink_schedule",
]
