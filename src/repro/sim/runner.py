"""Chaos runs: seeded workload + schedule generation and oracle checks.

One :class:`ChaosConfig` (essentially just a seed plus size knobs)
deterministically defines an entire chaos run:

* a Barabási–Albert physical topology with an MST dissemination tree,
  processors, two source streams and a handful of single-stream
  select-project queries (the fragment the delivery oracle is exact
  for);
* a pristine periodic feed, perturbed per source link (delay, drop,
  duplication, reordering) into explicit injection events;
* a fault plan of broker/processor crash-and-repair events inside the
  middle of the run;
* an *epilogue* of pristine injections after quiescence, used by the
  convergence invariant: once the last repair settled, further traffic
  must not move the routing epoch, and must be delivered per ground
  truth.

Every random draw is resolved at generation time from stream-named
children of the seed (``random.Random`` string seeding is stable across
processes and immune to hash randomisation), so
``generate_schedule(config)`` is a pure function and the resulting
event list is a value: replayable byte-identically and shrinkable.

:func:`run_schedule` executes any event list under the full oracle
battery and returns a :class:`ChaosReport`; :func:`run_chaos` is the
seed-to-report convenience; :func:`shrink_failing_schedule` reduces a
failing run to a minimal event schedule that still fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cql.schema import Attribute, StreamSchema
from repro.overlay.topology import barabasi_albert
from repro.overlay.tree import DisseminationTree
from repro.sim.network import ChaosCounters, VirtualNetwork
from repro.sim.oracle import (
    check_chronology,
    check_ground_truth,
    check_no_orphans,
    compare_systems,
    pristine_feed_from_events,
)
from repro.sim.schedule import (
    ChaosEvent,
    ChaosSchedule,
    InjectEvent,
    LinkModel,
    MigrationEvent,
    PunctuationEvent,
    merge_events,
    perturb_feed,
    plan_faults,
)
from repro.sim.trace import ChaosTrace, shrink_schedule
from repro.system.cosmos import CosmosSystem
from repro.system.monitor import SystemMonitor


def _chaos_schemas() -> Tuple[StreamSchema, StreamSchema]:
    """The chaos workload's two source streams.

    Deliberately timestamp-free payloads: application time comes only
    from the publish call, which keeps the oracle's binding trivially
    exact.
    """
    return (
        StreamSchema(
            "Temp",
            [
                Attribute("station", "int", 0, 9),
                Attribute("celsius", "float", -20, 40),
            ],
            rate=1.0,
        ),
        StreamSchema(
            "Humid",
            [
                Attribute("station", "int", 0, 9),
                Attribute("percent", "float", 0, 100),
            ],
            rate=1.0,
        ),
    )


#: (template, threshold grid) pairs the query generator draws from.
_QUERY_TEMPLATES: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    (
        "SELECT T.station, T.celsius FROM Temp [Range 1 Hour] T "
        "WHERE T.celsius > {t:g}",
        (-5.0, 0.0, 5.0, 10.0, 15.0, 20.0),
    ),
    (
        "SELECT T.celsius FROM Temp [Range 30 Minute] T "
        "WHERE T.station = {t:g} AND T.celsius > 0",
        (0.0, 1.0, 2.0, 3.0, 4.0),
    ),
    (
        "SELECT H.station, H.percent FROM Humid [Range 1 Hour] H "
        "WHERE H.percent < {t:g}",
        (30.0, 50.0, 70.0, 90.0),
    ),
    (
        "SELECT H.percent FROM Humid [Now] H "
        "WHERE H.station = {t:g}",
        (0.0, 1.0, 2.0, 3.0, 4.0),
    ),
)


@dataclass(frozen=True)
class ChaosConfig:
    """A fully deterministic chaos run, defined by its seed and sizes."""

    seed: int
    n_nodes: int = 18
    n_processors: int = 2
    n_queries: int = 5
    n_tuples: int = 12  # per stream, main phase
    n_faults: int = 2
    drop_p: float = 0.15
    dup_p: float = 0.1
    max_delay: float = 20.0
    duration: float = 600.0
    epilogue_tuples: int = 3  # per stream, after quiescence
    processor_fault_p: float = 0.35
    check_fast_path: bool = True
    #: Self-healing mode: sequenced uplinks heal drops/dups/reorders
    #: in-band, crashes are detector-driven, and the oracle demands
    #: *exact* delivery of the pristine feed (zero tolerated losses).
    recovery: bool = False
    #: Adaptive load management: seeded migration probes live-migrate
    #: whole query groups between processors mid-run.  Requires
    #: ``recovery`` — zero-loss migration rides the recovery executor's
    #: ordering stage (all data publication happens after every
    #: migration timer has resolved), so quarantine windows cannot eat
    #: tuples.
    migrate: bool = False

    def __post_init__(self) -> None:
        if self.migrate and not self.recovery:
            raise ValueError(
                "migrate=True requires recovery=True: zero-loss live "
                "migration needs the recovery executor's ordering stage"
            )

    @property
    def epilogue_start(self) -> float:
        """Events at or past this time belong to the convergence epilogue
        (safely beyond any delayed main-phase injection)."""
        return self.duration + 2.0 * self.max_delay + 1.0

    def rng(self, purpose: str) -> random.Random:
        """A named child RNG; string seeding is process-stable."""
        return random.Random(f"chaos:{self.seed}:{purpose}")


def _layout(config: ChaosConfig) -> Dict[str, object]:
    """Node roles: processors first, then one node per source, then users."""
    schemas = _chaos_schemas()
    processors = list(range(config.n_processors))
    source_nodes = {
        schema.name: config.n_processors + index
        for index, schema in enumerate(schemas)
    }
    n_users = min(3, config.n_nodes - config.n_processors - len(schemas))
    first_user = config.n_processors + len(schemas)
    users = list(range(first_user, first_user + n_users))
    needed = config.n_processors + len(schemas) + max(n_users, 1)
    if config.n_nodes < needed + 2:
        raise ValueError(
            f"n_nodes={config.n_nodes} too small for the chaos layout "
            f"(need >= {needed + 2})"
        )
    return {
        "schemas": schemas,
        "processors": processors,
        "source_nodes": source_nodes,
        "users": users,
    }


def _queries(config: ChaosConfig) -> List[Tuple[str, str]]:
    """The chaos queries as (query_id, CQL text), drawn from the seed."""
    rng = config.rng("queries")
    out: List[Tuple[str, str]] = []
    for index in range(config.n_queries):
        template, grid = _QUERY_TEMPLATES[
            rng.randrange(len(_QUERY_TEMPLATES))
        ]
        out.append((f"cq{index}", template.format(t=rng.choice(grid))))
    return out


def query_ids(config: ChaosConfig) -> List[str]:
    return [query_id for query_id, __ in _queries(config)]


def build_system(config: ChaosConfig, fast_path: bool = True) -> CosmosSystem:
    """Provision one chaos twin: topology, tree, sources and queries.

    Pure in everything but ``fast_path`` — the VirtualNetwork calls this
    twice to get structurally identical twins.
    """
    layout = _layout(config)
    topology = barabasi_albert(config.n_nodes, 2, config.rng("topology"))
    tree = DisseminationTree.minimum_spanning(topology)
    system = CosmosSystem(
        tree,
        processor_nodes=layout["processors"],
        topology=topology,
        fast_path=fast_path,
    )
    for schema in layout["schemas"]:
        system.add_source(schema, layout["source_nodes"][schema.name])
    users = layout["users"]
    for index, (query_id, text) in enumerate(_queries(config)):
        system.submit(text, user_node=users[index % len(users)], name=query_id)
    return system


def protected_nodes(config: ChaosConfig) -> List[int]:
    """Nodes that must never be broker-failed: processors, sources, users."""
    layout = _layout(config)
    protected = set(layout["processors"])
    protected.update(layout["source_nodes"].values())
    protected.update(layout["users"])
    return sorted(protected)


def _pristine_feed(
    config: ChaosConfig, phase: str, count: int, start: float
) -> List[Tuple[float, str, Dict[str, object]]]:
    """A periodic two-stream feed with seeded payloads, time-sorted."""
    rng = config.rng(f"feed:{phase}")
    schemas = _chaos_schemas()
    period = config.duration / max(count, 1)
    feed: List[Tuple[float, str, Dict[str, object]]] = []
    for index in range(count):
        for offset, schema in enumerate(schemas):
            time = start + index * period + offset * (period / len(schemas))
            payload: Dict[str, object] = {"station": rng.randrange(10)}
            if schema.name == "Temp":
                payload["celsius"] = round(rng.uniform(-20.0, 40.0), 2)
            else:
                payload["percent"] = round(rng.uniform(0.0, 100.0), 2)
            feed.append((time, schema.name, payload))
    feed.sort(key=lambda item: item[0])
    return feed


def _number_feed(
    feed: List[Tuple[float, str, Dict[str, object]]],
    next_seq: Dict[str, int],
) -> List[Tuple[float, str, Dict[str, object], int]]:
    """Annotate a time-sorted pristine feed with per-stream sequence
    numbers, continuing from (and advancing) ``next_seq``."""
    numbered = []
    for time, stream, payload in feed:
        seq = next_seq.get(stream, 0)
        next_seq[stream] = seq + 1
        numbered.append((time, stream, payload, seq))
    return numbered


def generate_schedule(config: ChaosConfig) -> ChaosSchedule:
    """The fully resolved chaos schedule of ``config`` (a pure function).

    With ``recovery=True`` the same schedule is generated (identical
    RNG draws, times, payloads and faults) with every feed event
    annotated by its uplink sequence number and original send time —
    the transport metadata the self-healing executor needs.
    """
    layout = _layout(config)
    links = {
        schema.name: LinkModel(config.max_delay, config.drop_p, config.dup_p)
        for schema in layout["schemas"]
    }
    main_feed = _pristine_feed(config, "main", config.n_tuples, start=1.0)
    next_seq: Dict[str, int] = {}
    if config.recovery:
        main_feed = _number_feed(main_feed, next_seq)
    main = perturb_feed(
        main_feed,
        links,
        config.rng("links"),
    )
    protected = set(protected_nodes(config))
    faults = plan_faults(
        config.rng("faults"),
        config.n_faults,
        (0.2 * config.duration, 0.6 * config.duration),
        broker_candidates=sorted(
            node for node in range(config.n_nodes) if node not in protected
        ),
        processor_candidates=list(layout["processors"]),
        processor_fault_p=config.processor_fault_p,
    )
    # Source punctuation closes the main phase in recovery mode: each
    # stream announces its highest main-phase sequence number just
    # before the epilogue boundary (safely after every delayed or
    # duplicated arrival), so a *trailing* drop — one no higher arrival
    # would ever expose — is NACKed and healed before the convergence
    # check and the main-phase delivery flush.
    punctuation: List[ChaosEvent] = []
    if config.recovery:
        punct_time = config.duration + 2.0 * config.max_delay
        punctuation = [
            PunctuationEvent(punct_time, stream, next_seq[stream] - 1)
            for stream in sorted(next_seq)
            if next_seq[stream] > 0
        ]
    # Migration probes (a fresh named RNG child, so migrate=False
    # schedules are byte-identical to pre-migration ones): one forced
    # rebalance before the fault window opens — both processors are
    # guaranteed up then, so every seed completes at least one live
    # migration — plus seeded detector scans across the fault window,
    # which compose migrations with crashes and exercise the
    # retry/abort paths.
    migrations: List[ChaosEvent] = []
    if config.migrate:
        mig_rng = config.rng("migrations")
        migrations.append(
            MigrationEvent(
                mig_rng.uniform(0.08, 0.15) * config.duration, "rebalance"
            )
        )
        for __ in range(2 + mig_rng.randrange(2)):
            migrations.append(
                MigrationEvent(
                    mig_rng.uniform(0.2, 0.9) * config.duration, "scan"
                )
            )
        migrations.sort(key=lambda e: e.time)
    # The epilogue is pristine by construction: after quiescence the
    # convergence oracle wants exact, loss-free traffic.  In recovery
    # mode it continues the per-stream numbering, so a gap left by a
    # trailing main-phase drop is detected by the first epilogue tuple.
    epilogue_feed = _pristine_feed(
        config,
        "epilogue",
        config.epilogue_tuples,
        start=config.epilogue_start + 10.0,
    )
    if config.recovery:
        epilogue: List[ChaosEvent] = [
            InjectEvent(
                time, stream, tuple(sorted(payload.items())),
                seq=seq, sent=time,
            )
            for time, stream, payload, seq in _number_feed(
                epilogue_feed, next_seq
            )
        ]
    else:
        epilogue = [
            InjectEvent(time, stream, tuple(sorted(payload.items())))
            for time, stream, payload in epilogue_feed
        ]
    return ChaosSchedule(
        config.seed,
        merge_events(main, faults, migrations, punctuation, epilogue),
    )


@dataclass
class ChaosReport:
    """The outcome of one chaos run under the full oracle battery."""

    config: ChaosConfig
    violations: List[str]
    counters: ChaosCounters
    trace: ChaosTrace
    routing_epoch: int = 0
    #: Simulated time of the last self-healing action (recovery mode);
    #: ``None`` when no recovery was ever needed (or lossy mode).
    convergence_time: Optional[float] = None
    #: Reliability counters snapshot (recovery mode only).
    reliability: Optional[Dict[str, int]] = None
    #: Post-run :meth:`~repro.system.monitor.SystemMonitor.health`
    #: snapshot of the primary (reliability + load-management block).
    health: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "OK" if self.ok else f"FAIL ({len(self.violations)} violations)"
        tail = ""
        if self.config.recovery:
            converged = (
                f"converged t={self.convergence_time:g}"
                if self.convergence_time is not None
                else "no recovery needed"
            )
            tail = f" recovery ({converged})"
        lines = [
            f"chaos seed={self.config.seed} {status} "
            f"trace={self.trace.digest()}{tail}",
            *(f"  violation: {v}" for v in self.violations),
        ]
        return "\n".join(lines)


def run_schedule(
    config: ChaosConfig, events: Sequence[ChaosEvent]
) -> ChaosReport:
    """Execute an explicit event list under the full oracle battery.

    The list may be any sub-schedule of ``generate_schedule(config)``
    (the shrinker passes candidates through here); events at or past
    ``config.epilogue_start`` run after the convergence snapshot.

    With ``config.recovery`` the run goes through the self-healing
    path and the ground-truth oracle becomes *exact*: the expectation
    is computed from the pristine feed reconstructed out of the event
    list itself — drops must be healed by retransmission, duplicates
    suppressed, reorderings repaired, with zero tolerated losses.
    """
    vnet = VirtualNetwork(
        build=lambda fast_path: build_system(config, fast_path=fast_path),
        check_fast_path=config.check_fast_path,
        recovery=config.recovery,
        migrate=config.migrate,
    )
    main = [e for e in events if e.time < config.epilogue_start]
    epilogue = [e for e in events if e.time >= config.epilogue_start]
    vnet.execute(main)
    epoch_after_main = vnet.routing_epoch()
    vnet.execute(epilogue)
    violations: List[str] = []
    if epilogue and vnet.routing_epoch() != epoch_after_main:
        violations.append(
            f"convergence: routing epoch moved {epoch_after_main} -> "
            f"{vnet.routing_epoch()} on post-quiescence traffic"
        )
    ids = [
        query_id for query_id in query_ids(config)
        if query_id in vnet.primary._queries
    ]
    if len(ids) != len(query_ids(config)):
        lost = sorted(set(query_ids(config)) - set(ids))
        violations.append(f"ground-truth: queries {lost} vanished")
    oracle_feed = (
        pristine_feed_from_events(events)
        if config.recovery
        else vnet.effective_feed
    )
    violations.extend(check_ground_truth(vnet.primary, oracle_feed, ids))
    violations.extend(check_no_orphans(vnet.primary))
    violations.extend(check_chronology(vnet.primary))
    if vnet.shadow is not None:
        violations.extend(check_no_orphans(vnet.shadow))
        violations.extend(compare_systems(vnet.primary, vnet.shadow))
    return ChaosReport(
        config=config,
        violations=violations,
        counters=vnet.counters,
        trace=vnet.trace,
        routing_epoch=vnet.routing_epoch(),
        convergence_time=vnet.last_recovery_time,
        reliability=(
            vnet.state.counters.as_dict() if vnet.state is not None else None
        ),
        health=SystemMonitor(vnet.primary).health(),
    )


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Seed to report: generate the schedule and run it under the oracles."""
    return run_schedule(config, generate_schedule(config).events)


def shrink_failing_schedule(
    config: ChaosConfig, events: Sequence[ChaosEvent], max_runs: int = 200
) -> List[ChaosEvent]:
    """ddmin a failing schedule to a minimal event list that still fails."""
    return shrink_schedule(
        events,
        fails=lambda candidate: not run_schedule(config, candidate).ok,
        max_runs=max_runs,
    )
