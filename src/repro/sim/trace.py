"""Replayable chaos traces and schedule shrinking.

A :class:`ChaosTrace` is the canonical record of one chaos run: one
line per executed event, stated entirely in primitives with all
set-order leaks removed (payloads sorted, counters instead of delivery
lists), so two runs of the same seed produce *byte-identical* traces —
across processes and regardless of ``PYTHONHASHSEED``.  The short
digest printed on failure lines is how CI logs and local replays are
matched up.

:func:`shrink_schedule` reduces a failing schedule to a 1-minimal one
with the classic ddmin loop: repeatedly try dropping chunks of events
(halving granularity down to single events) while the caller's
``fails`` predicate keeps failing.  Because schedules are fully
resolved (no RNG at execution), deleting events is always meaningful.
"""

from __future__ import annotations

import hashlib
from typing import Callable, List, Sequence


class ChaosTrace:
    """An append-only, deterministic record of one chaos run."""

    def __init__(self) -> None:
        self._lines: List[str] = []

    def record(self, line: str) -> None:
        self._lines.append(line)

    @property
    def lines(self) -> List[str]:
        return list(self._lines)

    def render(self) -> str:
        return "\n".join(self._lines)

    def digest(self) -> str:
        """A short stable digest of the full trace (CI log / replay key)."""
        return hashlib.sha256(self.render().encode("utf-8")).hexdigest()[:12]

    def __len__(self) -> int:
        return len(self._lines)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChaosTrace):
            return NotImplemented
        return self._lines == other._lines

    def __repr__(self) -> str:
        return f"ChaosTrace({len(self._lines)} lines, digest={self.digest()})"


def shrink_schedule(
    events: Sequence[object],
    fails: Callable[[List[object]], bool],
    max_runs: int = 500,
) -> List[object]:
    """Shrink a failing event list to a 1-minimal failing sublist.

    ``fails(candidate)`` must return ``True`` while the failure
    reproduces.  The input must itself fail.  Event order is preserved
    (schedules are time-sorted and stay so under deletion).  The
    result is 1-minimal when the run budget allows: removing any single
    remaining event makes the failure disappear.
    """
    current = list(events)
    if not fails(current):
        raise ValueError("shrink_schedule needs a failing schedule to start from")
    runs = 0
    granularity = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // granularity)
        shrunk = False
        start = 0
        while start < len(current) and runs < max_runs:
            candidate = current[:start] + current[start + chunk :]
            if not candidate:
                start += chunk
                continue
            runs += 1
            if fails(candidate):
                current = candidate
                shrunk = True
                # Re-try from the same offset: the next chunk slid in.
            else:
                start += chunk
        if shrunk:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break  # 1-minimal
        else:
            granularity = min(granularity * 2, len(current))
    return current
