"""Delivery oracles: ground truth computed outside the CBN.

The chaos harness restricts its workload to single-stream
select-project queries, which makes expected deliveries *exactly*
computable from the query text and the effective input feed alone —
no window state, no join ordering, no reliance on any code path the
chaos run is trying to falsify.  :func:`expected_results` canonicalises
the query (the system under test does the same at submission), binds
each surviving input tuple's payload under qualified names, evaluates
the WHERE conjunction, and projects — one expected result per matching
tuple, in injection order, carrying the tuple's timestamp.

The invariant checkers each return a list of violation strings (empty
means the invariant holds):

* :func:`check_ground_truth` — every query's delivered result sequence
  equals the oracle's expectation, exactly and in order;
* :func:`check_no_orphans` — after all crash/repair cycles, the
  system's query handles, user subscriptions and source subscriptions
  are mutually consistent and live on surviving nodes;
* :func:`check_chronology` — each query's result timestamps are
  non-decreasing (re-homing must preserve result chronology);
* :func:`compare_systems` — the fast-path twin delivered exactly what
  the naive-scan twin delivered (per-query sequences and traffic
  accounting).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cbn.datagram import Datagram
from repro.cql.ast import ContinuousQuery
from repro.cql.schema import Catalog
from repro.sim.schedule import ChaosEvent, DropEvent, InjectEvent
from repro.system.cosmos import CosmosSystem, QueryStatus

#: One expected delivery: (payload under qualified names, timestamp).
ExpectedResult = Tuple[Dict[str, object], float]


def pristine_feed_from_events(
    events: Sequence[ChaosEvent],
) -> List[Datagram]:
    """The pristine (pre-perturbation) feed a recovery run must deliver.

    Reconstructed from the schedule itself so it stays exact for any
    sub-schedule the shrinker produces: every sequenced send — a
    non-duplicate injection or a drop (the wire ate it, but the
    reliable uplink must heal it) — contributes one datagram at its
    original send time.  Per stream the order is sequence order, which
    is send order; globally the feed sorts by send time (ties broken
    by stream/seq), matching the per-query delivery order of the
    sequenced uplink.
    """
    sends: Dict[Tuple[str, int], Datagram] = {}
    for event in events:
        if isinstance(event, InjectEvent) and not event.duplicate:
            if event.seq is None:
                continue
            sent = event.sent if event.sent is not None else event.time
            sends[(event.stream, event.seq)] = Datagram(
                event.stream, dict(event.payload), sent, event.seq
            )
        elif isinstance(event, DropEvent) and event.seq is not None:
            sent = event.sent if event.sent is not None else event.time
            sends[(event.stream, event.seq)] = Datagram(
                event.stream, dict(event.payload or ()), sent, event.seq
            )
    return [
        sends[key]
        for key in sorted(
            sends, key=lambda k: (sends[k].timestamp, k[0], k[1])
        )
    ]


def expected_results(
    query: ContinuousQuery,
    catalog: Catalog,
    feed: Sequence[Datagram],
) -> List[ExpectedResult]:
    """Ground-truth deliveries of a single-stream select-project query.

    ``feed`` is the *effective* input feed — the tuples that actually
    entered the system, post link perturbation, in injection order
    (duplicates included: a stateless select-project query must deliver
    a duplicate input twice).
    """
    canonical = query.canonical(catalog)
    if len(canonical.streams) != 1:
        raise ValueError(
            f"the chaos oracle only supports single-stream queries, "
            f"got {len(canonical.streams)} streams"
        )
    stream = canonical.streams[0].stream
    projected = [attr.key for attr in canonical.projected_attributes(catalog)]
    expected: List[ExpectedResult] = []
    for datagram in feed:
        if datagram.stream != stream:
            continue
        binding = {
            f"{stream}.{key}": value for key, value in datagram.payload.items()
        }
        if not canonical.predicate.evaluate(binding):
            continue
        expected.append(
            ({key: binding[key] for key in projected}, datagram.timestamp)
        )
    return expected


def _delivered(system: CosmosSystem, query_id: str) -> List[ExpectedResult]:
    """What the system actually delivered, via the *current* handle.

    ``fail_processor`` replaces handles, so stale references collected
    before a crash silently miss post-repair deliveries; always go
    through ``system.query``.
    """
    handle = system.query(query_id)
    return [(dict(r.payload), r.timestamp) for r in handle.results]


def check_ground_truth(
    system: CosmosSystem,
    feed: Sequence[Datagram],
    query_ids: Sequence[str],
) -> List[str]:
    """Every query delivered exactly the oracle's expectation, in order."""
    violations: List[str] = []
    for query_id in query_ids:
        handle = system.query(query_id)
        if handle.status is not QueryStatus.ACTIVE:
            continue  # quarantined: delivery is suspended by design
        want = expected_results(handle.query, system.catalog, feed)
        got = _delivered(system, query_id)
        if got != want:
            missing = len(want) - len(got)
            detail = (
                f"{missing} results missing" if missing > 0
                else f"{-missing} spurious results" if missing < 0
                else "same count, wrong content/order"
            )
            violations.append(
                f"ground-truth: query {query_id!r} delivered {len(got)} "
                f"results, oracle expects {len(want)} ({detail})"
            )
    return violations


def check_no_orphans(system: CosmosSystem) -> List[str]:
    """Queries, subscriptions and roles are consistent after repairs.

    Catches the classic repair bugs: a re-homed query whose user
    subscription was dropped (it silently stops receiving), a withdrawn
    query whose subscription leaked (phantom traffic), a source
    subscription pointing at a node that is no longer a processor, and
    any role pinned to a node the repaired tree no longer contains.
    """
    violations: List[str] = []
    live = system.network.subscriptions()
    for query_id, handle in sorted(system._queries.items()):
        if handle.status is not QueryStatus.ACTIVE:
            # A quarantined (DEGRADED) query holds no subscriptions by
            # design; it is not an orphan.
            continue
        sub_id = system._user_subscriptions.get(query_id)
        if sub_id is None:
            violations.append(
                f"orphan: query {query_id!r} has no user subscription"
            )
        elif sub_id not in live:
            violations.append(
                f"orphan: query {query_id!r} subscription {sub_id} "
                f"not installed in the CBN"
            )
        else:
            node, __ = live[sub_id]
            if node != handle.user_node:
                violations.append(
                    f"orphan: query {query_id!r} subscription lives at "
                    f"node {node}, user is at {handle.user_node}"
                )
        if handle.user_node not in system.tree:
            violations.append(
                f"orphan: query {query_id!r} user node "
                f"{handle.user_node} left the tree"
            )
        if handle.processor_node not in system.processors:
            violations.append(
                f"orphan: query {query_id!r} homed on "
                f"{handle.processor_node}, which is not a processor"
            )
    for sub_id in sorted(live):
        node, __ = live[sub_id]
        if sub_id.startswith("user:"):
            query_id = sub_id.split(":", 2)[1]
            if query_id not in system._queries:
                violations.append(
                    f"orphan: subscription {sub_id} outlived its query"
                )
        elif sub_id.startswith("src:"):
            if node not in system.processors:
                violations.append(
                    f"orphan: source subscription {sub_id} feeds node "
                    f"{node}, which is not a processor"
                )
        if node not in system.tree:
            violations.append(
                f"orphan: subscription {sub_id} at node {node}, "
                f"which left the tree"
            )
    return violations


def check_chronology(system: CosmosSystem) -> List[str]:
    """Result timestamps are non-decreasing per query (survives re-homing)."""
    violations: List[str] = []
    for query_id in sorted(system._queries):
        results = system.query(query_id).results
        for prev, cur in zip(results, results[1:]):
            if cur.timestamp < prev.timestamp:
                violations.append(
                    f"chronology: query {query_id!r} result at "
                    f"t={cur.timestamp:g} follows t={prev.timestamp:g}"
                )
                break
    return violations


def compare_systems(fast: CosmosSystem, naive: CosmosSystem) -> List[str]:
    """The indexed fast path delivered exactly what the naive scan did."""
    violations: List[str] = []
    fast_ids = sorted(fast._queries)
    naive_ids = sorted(naive._queries)
    if fast_ids != naive_ids:
        violations.append(
            f"fast-vs-naive: query sets diverged ({fast_ids} vs {naive_ids})"
        )
        return violations
    for query_id in fast_ids:
        if _delivered(fast, query_id) != _delivered(naive, query_id):
            violations.append(
                f"fast-vs-naive: query {query_id!r} result sequences diverged"
            )
    if fast.network.data_stats.as_dict() != naive.network.data_stats.as_dict():
        violations.append("fast-vs-naive: data-layer traffic accounting diverged")
    if fast.network.routing_state_size() != naive.network.routing_state_size():
        violations.append("fast-vs-naive: routing state sizes diverged")
    return violations
