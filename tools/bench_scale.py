#!/usr/bin/env python
"""CI scale benchmark: columnar batch data plane + incremental repair.

Three measurements, written to ``BENCH_scale.json`` at the repo root:

* **gate tier** (~10k subscriptions, 300 brokers): the columnar batch
  path (``publish_many`` over contiguous same-stream runs, per-stream
  routing index on) against the naive per-datagram pre-index scan.
  This is the CI-gated floor: the columnar path must be at least
  ``GATE_FLOOR``x faster while producing byte-identical deliveries and
  per-link traffic.
* **scale tier** (10k nodes, 100k subscriptions): columnar-only
  throughput at the paper's target scale — no naive run (it would take
  minutes), just the achievable datagrams/sec and delivery fan-out.
* **churn**: 100 join/re-weight events on a 10k-node topology
  maintained by :class:`repro.overlay.optimizer.IncrementalOverlay`,
  timed against a full Kruskal recompute after every event; the
  incremental tree's total weight must match the recompute exactly.

Measurement helpers come from :mod:`repro.workload.bench`, the same
harness ``tools/bench_publish.py`` and the pytest gates use.  Exits
non-zero when equivalence breaks, the gate-tier speedup is under the
floor, or the incrementally maintained tree's weight drifts.
"""

from __future__ import annotations

import json
import pathlib
import random
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.overlay.optimizer import IncrementalOverlay  # noqa: E402
from repro.overlay.topology import barabasi_albert  # noqa: E402
from repro.workload.bench import (  # noqa: E402
    best_of,
    group_feed,
    publish_batched,
    publish_batched_time,
    publish_loop,
    publish_loop_time,
    stats_equal,
)
from repro.workload.fastpath import build_fastpath_workload  # noqa: E402

#: CI-gated floor for the gate tier (measured headroom is ~16x).
GATE_FLOOR = 10.0

GATE_TIER = dict(
    n_streams=64,
    n_subscriptions=10_000,
    n_nodes=300,
    n_datagrams=128,
    batch_size=32,
)
SCALE_TIER = dict(
    n_streams=128,
    n_subscriptions=100_000,
    n_nodes=10_000,
    n_datagrams=256,
    batch_size=64,
)
CHURN_NODES = 10_000
CHURN_EVENTS = 100
REPS = 3


def run_gate_tier() -> dict:
    """Columnar batches vs the naive per-datagram scan at 10k subs."""
    fast = build_fastpath_workload(fast_path=True, **GATE_TIER)
    slow = build_fastpath_workload(fast_path=False, **GATE_TIER)
    runs = group_feed(fast.feed)
    fast_out = publish_batched(fast.network, runs)
    slow_out = publish_loop(slow.network, slow.feed)
    fast_time, slow_time = best_of(
        REPS,
        lambda: publish_batched_time(fast.network, runs),
        lambda: publish_loop_time(slow.network, slow.feed),
    )
    n = GATE_TIER["n_datagrams"]
    return {
        "workload": dict(GATE_TIER, reps=REPS),
        "naive": {
            "datagrams_per_sec": round(n / slow_time, 1),
            "seconds": round(slow_time, 4),
        },
        "columnar": {
            "datagrams_per_sec": round(n / fast_time, 1),
            "seconds": round(fast_time, 4),
        },
        "speedup": round(slow_time / fast_time, 2),
        "floor": GATE_FLOOR,
        "equivalent": fast_out == slow_out and stats_equal(fast.network, slow.network),
    }


def run_scale_tier() -> dict:
    """Columnar-only throughput at 10k nodes / 100k subscriptions."""
    build_start = time.perf_counter()
    workload = build_fastpath_workload(fast_path=True, **SCALE_TIER)
    build_seconds = time.perf_counter() - build_start
    runs = group_feed(workload.feed)
    deliveries = sum(len(s) for s in publish_batched(workload.network, runs))
    best = min(
        publish_batched_time(workload.network, runs) for __ in range(2)
    )
    n = SCALE_TIER["n_datagrams"]
    return {
        "workload": dict(SCALE_TIER),
        "build_seconds": round(build_seconds, 1),
        "datagrams_per_sec": round(n / best, 1),
        "seconds": round(best, 4),
        "deliveries": deliveries,
    }


def run_churn() -> dict:
    """Incremental spanning-tree repair vs full recompute under churn."""
    rng = random.Random(11)
    topology = barabasi_albert(CHURN_NODES, 2, rng)
    overlay = IncrementalOverlay(topology)
    next_id = CHURN_NODES
    incremental_seconds = 0.0
    full_seconds = 0.0
    for __ in range(CHURN_EVENTS):
        if rng.random() < 0.4:
            nodes = topology.nodes
            links = {}
            while len(links) < 2:
                links[rng.choice(nodes)] = rng.uniform(1.0, 1000.0)
            start = time.perf_counter()
            overlay.join(next_id, links)
            incremental_seconds += time.perf_counter() - start
            next_id += 1
        else:
            u, v = rng.choice(sorted(topology.weights))
            start = time.perf_counter()
            overlay.reweight(u, v, rng.uniform(1.0, 1000.0))
            incremental_seconds += time.perf_counter() - start
        start = time.perf_counter()
        full_edges = topology.minimum_spanning_tree_edges()
        full_seconds += time.perf_counter() - start
    full_weight = sum(topology.weights[e] for e in full_edges)
    return {
        "nodes": CHURN_NODES,
        "events": CHURN_EVENTS,
        "incremental_seconds": round(incremental_seconds, 4),
        "full_recompute_seconds": round(full_seconds, 4),
        "speedup": round(full_seconds / incremental_seconds, 2),
        "local_repairs": overlay.local_repairs,
        "full_rebuilds": overlay.full_rebuilds,
        "weight_exact": abs(overlay.total_weight() - full_weight) < 1e-6,
    }


def main() -> int:
    gate = run_gate_tier()
    scale = run_scale_tier()
    churn = run_churn()
    result = {"gate": gate, "scale": scale, "churn": churn}
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_scale.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    failures = []
    if not gate["equivalent"]:
        failures.append("columnar deliveries/stats differ from the naive path")
    if gate["speedup"] < GATE_FLOOR:
        failures.append(
            f"gate-tier speedup {gate['speedup']}x under the {GATE_FLOOR}x floor"
        )
    if not churn["weight_exact"]:
        failures.append("incremental tree weight drifted from the full recompute")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
