#!/usr/bin/env python3
"""Thin wrapper over the COS7xx style pass for ``src/repro/**``.

The three original rules (L001 mutable default argument, L002 bare
except, L003 missing ``from __future__ import annotations``) migrated
into the analyzer package as COS701-COS703 (see
``repro.analysis.style``), so there is exactly one lint
implementation; this script survives for its command-line contract::

    python tools/lint_repro.py [root]

Exits 0 when clean, 1 with one ``file:line: code message`` per
finding, 2 when ``root`` holds no ``src/repro`` package.  Pragmas and
the baseline are deliberately *not* applied here — the wrapper reports
raw COS7xx findings exactly as the old standalone lint did; use
``repro check --self`` for the full pipeline.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    package = root / "src" / "repro"
    if not package.is_dir():
        print(f"lint_repro: no package at {package}", file=sys.stderr)
        return 2
    # The analyzer ships next to this tool; `root` only picks the lint
    # target, so a scratch tree must not shadow the real package.
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
    from repro.analysis import check_package

    report, _ = check_package(
        package, base=root, codes=["COS7xx"], respect_pragmas=False
    )
    for diag in report:
        print(diag.render())
    if len(report):
        print(f"{len(report)} finding(s)")
        return 1
    print(f"lint_repro: clean ({sum(1 for _ in package.rglob('*.py'))} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
