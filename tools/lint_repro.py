#!/usr/bin/env python3
"""A tiny stdlib-ast lint for ``src/repro/**``.

Three rules, all of which have bitten stream-processing code before:

* **L001 mutable default argument** — a ``def f(x=[])`` default is
  created once and shared across calls; routing tables and profile
  lists silently accumulate state.
* **L002 bare except** — ``except:`` catches ``KeyboardInterrupt`` and
  ``SystemExit`` too, hanging long-running broker loops.
* **L003 missing future annotations** — every module in the package
  imports ``from __future__ import annotations`` so forward references
  in the layered API stay cheap and consistent.

Usage::

    python tools/lint_repro.py [root]

Exits 0 when clean, 1 with one ``file:line: code message`` per finding.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

Finding = Tuple[Path, int, str, str]

MUTABLE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _mutable_defaults(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, MUTABLE_NODES):
                yield (
                    default.lineno,
                    f"mutable default argument in {node.name}()",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            ):
                yield (
                    default.lineno,
                    f"mutable default argument in {node.name}()",
                )


def _bare_excepts(tree: ast.AST) -> Iterator[Tuple[int, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield node.lineno, "bare except: catches SystemExit/KeyboardInterrupt"


def _has_future_annotations(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            if any(alias.name == "annotations" for alias in node.names):
                return True
    return False


def lint_file(path: Path) -> List[Finding]:
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    findings: List[Finding] = []
    for line, message in _mutable_defaults(tree):
        findings.append((path, line, "L001", message))
    for line, message in _bare_excepts(tree):
        findings.append((path, line, "L002", message))
    if source.strip() and not _has_future_annotations(tree):
        findings.append(
            (path, 1, "L003", "missing 'from __future__ import annotations'")
        )
    return findings


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    package = root / "src" / "repro"
    if not package.is_dir():
        print(f"lint_repro: no package at {package}", file=sys.stderr)
        return 2
    findings: List[Finding] = []
    for path in sorted(package.rglob("*.py")):
        findings.extend(lint_file(path))
    for path, line, code, message in findings:
        print(f"{path.relative_to(root)}:{line}: {code} {message}")
    if findings:
        print(f"{len(findings)} finding(s)")
        return 1
    print(f"lint_repro: clean ({sum(1 for _ in package.rglob('*.py'))} files)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
