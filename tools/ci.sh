#!/bin/sh
# Offline CI gate: lint, static analysis, tier-1 tests.  No network.
set -e

cd "$(dirname "$0")/.."

echo "== lint =="
python tools/lint_repro.py

echo "== repro check =="
PYTHONPATH=src python -m repro check

echo "== repro check --self (COS5xx/6xx/7xx/8xx/9xx source lint, <10s budget) =="
PYTHONPATH=src python -m repro check --self --strict --json > BENCH_selfcheck.json
python - <<'EOF'
import json
payload = json.load(open("BENCH_selfcheck.json"))
wall = payload["analyzer"]["wall_seconds"]
passes = [entry["name"] for entry in payload["analyzer"]["passes"]]
print(f"analyzer passes: {', '.join(passes)}; wall {wall:.2f}s")
assert wall < 10.0, f"analyzer runtime budget exceeded: {wall:.2f}s >= 10s"
EOF

echo "== tier-1 tests =="
PYTHONPATH=src:. python -m pytest -x -q

echo "== bench smoke (publish fast path) =="
python tools/bench_publish.py

echo "== bench scale (columnar batch plane, 10x floor; incremental repair) =="
python tools/bench_scale.py

echo "== chaos scale smoke (1000-node overlay, recovery + conformance) =="
PYTHONPATH=src python -m repro chaos --seeds 3 --nodes 1000 --recovery --conform --json BENCH_chaos_scale.json

echo "== chaos smoke (seeded fault injection + conformance) =="
PYTHONPATH=src python -m repro chaos --seeds 25 --conform --json BENCH_chaos.json

echo "== chaos recovery smoke (self-healing, exact delivery + conformance oracles) =="
PYTHONPATH=src python -m repro chaos --seeds 25 --recovery --conform --json BENCH_chaos_recovery.json

echo "== chaos migration smoke (live group migration under faults, zero-loss) =="
PYTHONPATH=src python -m repro chaos --seeds 25 --recovery --migrate --conform --json BENCH_chaos_migration.json
python - <<'EOF'
import json
payload = json.load(open("BENCH_chaos_migration.json"))
assert payload["ok"], "migration sweep failed"
for record in payload["seeds"]:
    seed = record["seed"]
    assert record["ok"], f"seed {seed}: oracle violations {record['violations']}"
    assert not record["conformance_violations"], (
        f"seed {seed}: conformance violations {record['conformance_violations']}"
    )
    completed = record["health"]["migrations_completed"]
    assert completed >= 1, f"seed {seed}: no live migration completed"
total = payload["totals"]["migrations_completed"]
print(f"migration sweep: {total} live migrations, zero loss, zero violations")
EOF

echo "== bounded model check + chaos coverage (COS901-905, >=90% gate) =="
PYTHONPATH=src python -m repro model --strict --json \
    --coverage BENCH_chaos.json BENCH_chaos_recovery.json \
               BENCH_chaos_migration.json BENCH_chaos_scale.json \
    > BENCH_modelcov.json
python - <<'EOF'
import json
payload = json.load(open("BENCH_modelcov.json"))
model = payload["model"]
assert model["exhausted"], "model exploration truncated — raise the cap"
hard = [d for d in payload["diagnostics"]
        if d["code"] in ("COS901", "COS902", "COS903", "COS904")]
assert not hard, f"model-check errors: {hard}"
cold = [d for d in payload["diagnostics"] if d["code"] == "COS905"]
assert not cold, f"un-baselined cold transitions: {cold}"
cov = payload["coverage"]
gated = cov["coverage_gated"]
assert gated >= 0.90, f"coverage gate: {gated:.0%} < 90%"
print(
    f"model: {model['states']} states, {model['edges']} edges, exhausted; "
    f"coverage {cov['transitions_exercised']}/{cov['transitions_total']} "
    f"(raw {cov['coverage_raw']:.0%}, gated {gated:.0%}, "
    f"{cov['transitions_baselined']} baselined)"
)
EOF

echo "== ci: all gates passed =="
