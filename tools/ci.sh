#!/bin/sh
# Offline CI gate: lint, static analysis, tier-1 tests.  No network.
set -e

cd "$(dirname "$0")/.."

echo "== lint =="
python tools/lint_repro.py

echo "== repro check =="
PYTHONPATH=src python -m repro check

echo "== repro check --self (COS5xx/6xx/7xx source lint) =="
PYTHONPATH=src python -m repro check --self --strict

echo "== tier-1 tests =="
PYTHONPATH=src:. python -m pytest -x -q

echo "== bench smoke (publish fast path) =="
python tools/bench_publish.py

echo "== chaos smoke (seeded fault injection) =="
PYTHONPATH=src python -m repro chaos --seeds 25 --json BENCH_chaos.json

echo "== chaos recovery smoke (self-healing, exact delivery oracle) =="
PYTHONPATH=src python -m repro chaos --seeds 25 --recovery --json BENCH_chaos_recovery.json

echo "== ci: all gates passed =="
