#!/usr/bin/env python
"""CI benchmark smoke: CBN publish throughput, indexed vs naive.

Runs the shared matching-heavy workload
(:func:`repro.workload.fastpath.build_fastpath_workload`) once with the
per-stream routing index + decision cache and once with the naive
pre-index scan, checks the two paths produce byte-identical deliveries
and per-link traffic, and writes ``BENCH_publish.json`` at the repo
root::

    {
      "workload": {...},
      "before": {"datagrams_per_sec": ..., "seconds": ...},
      "after":  {"datagrams_per_sec": ..., "seconds": ...},
      "speedup": ...,
      "equivalent": true
    }

Scale is kept small enough for an offline CI smoke step (a couple of
seconds); the pytest benchmark ``test_cbn_fastpath_speedup`` is the
authoritative >=3x gate at full scale.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.workload.fastpath import build_fastpath_workload  # noqa: E402

WORKLOAD = dict(
    n_streams=24,
    n_subscriptions=1200,
    n_nodes=120,
    n_datagrams=100,
)
REPS = 3


def warm(workload):
    deliveries = [
        workload.network.publish(datagram, origin)
        for datagram, origin in workload.feed
    ]
    return [
        [(d.subscription_id, d.node, d.datagram) for d in per_datagram]
        for per_datagram in deliveries
    ]


def timed(workload):
    start = time.perf_counter()
    for datagram, origin in workload.feed:
        workload.network.publish(datagram, origin)
    return time.perf_counter() - start


def main() -> int:
    fast = build_fastpath_workload(fast_path=True, **WORKLOAD)
    slow = build_fastpath_workload(fast_path=False, **WORKLOAD)
    fast_out = warm(fast)
    slow_out = warm(slow)
    # Interleave the timed reps so both paths sample the same machine
    # conditions; keep the best rep of each.
    fast_time = slow_time = float("inf")
    for __ in range(REPS):
        fast_time = min(fast_time, timed(fast))
        slow_time = min(slow_time, timed(slow))
    equivalent = (
        fast_out == slow_out
        and fast.network.data_stats.as_dict() == slow.network.data_stats.as_dict()
    )
    n = WORKLOAD["n_datagrams"]
    result = {
        "workload": dict(WORKLOAD, reps=REPS),
        "before": {
            "datagrams_per_sec": round(n / slow_time, 1),
            "seconds": round(slow_time, 4),
        },
        "after": {
            "datagrams_per_sec": round(n / fast_time, 1),
            "seconds": round(fast_time, 4),
        },
        "speedup": round(slow_time / fast_time, 2),
        "equivalent": equivalent,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_publish.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if not equivalent:
        print("FAIL: fast path deliveries/stats differ from the naive path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
