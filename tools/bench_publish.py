#!/usr/bin/env python
"""CI benchmark smoke: CBN publish throughput, indexed vs naive.

Runs the shared matching-heavy workload
(:func:`repro.workload.fastpath.build_fastpath_workload`) once with the
per-stream routing index + decision cache and once with the naive
pre-index scan, checks the two paths produce byte-identical deliveries
and per-link traffic, and writes ``BENCH_publish.json`` at the repo
root::

    {
      "workload": {...},
      "before": {"datagrams_per_sec": ..., "seconds": ...},
      "after":  {"datagrams_per_sec": ..., "seconds": ...},
      "speedup": ...,
      "equivalent": true
    }

Measurement and equivalence procedures come from
:mod:`repro.workload.bench` — the same harness the pytest gate
``test_cbn_fastpath_speedup`` and ``tools/bench_scale.py`` use, so the
artifact and the gates cannot drift on methodology.  Scale is kept
small enough for an offline CI smoke step (a couple of seconds); the
pytest benchmark is the authoritative >=3x gate at full scale.
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.workload.bench import (  # noqa: E402
    best_of,
    publish_loop,
    publish_loop_time,
    stats_equal,
)
from repro.workload.fastpath import build_fastpath_workload  # noqa: E402

WORKLOAD = dict(
    n_streams=24,
    n_subscriptions=1200,
    n_nodes=120,
    n_datagrams=100,
)
REPS = 3


def main() -> int:
    fast = build_fastpath_workload(fast_path=True, **WORKLOAD)
    slow = build_fastpath_workload(fast_path=False, **WORKLOAD)
    fast_out = publish_loop(fast.network, fast.feed)
    slow_out = publish_loop(slow.network, slow.feed)
    fast_time, slow_time = best_of(
        REPS,
        lambda: publish_loop_time(fast.network, fast.feed),
        lambda: publish_loop_time(slow.network, slow.feed),
    )
    equivalent = fast_out == slow_out and stats_equal(fast.network, slow.network)
    n = WORKLOAD["n_datagrams"]
    result = {
        "workload": dict(WORKLOAD, reps=REPS),
        "before": {
            "datagrams_per_sec": round(n / slow_time, 1),
            "seconds": round(slow_time, 4),
        },
        "after": {
            "datagrams_per_sec": round(n / fast_time, 1),
            "seconds": round(fast_time, 4),
        },
        "speedup": round(slow_time / fast_time, 2),
        "equivalent": equivalent,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / "BENCH_publish.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    if not equivalent:
        print("FAIL: fast path deliveries/stats differ from the naive path")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
